(* Lockstep refinement of Dbfs against the pure Model.  See refine.mli
   for the mode catalogue and DESIGN.md "Refinement rules" for the
   equivalence / prefix-boundary / linearizability arguments. *)

module BD = Rgpdos_block.Block_device
module Dbfs = Rgpdos_dbfs.Dbfs
module Record = Rgpdos_dbfs.Record
module Query = Rgpdos_dbfs.Query
module Schema = Rgpdos_dbfs.Schema
module Value = Rgpdos_dbfs.Value
module M = Rgpdos_membrane.Membrane
module Clock = Rgpdos_util.Clock
module Prng = Rgpdos_util.Prng
module Pool = Rgpdos_util.Pool
module Fnv = Rgpdos_util.Fnv

type op =
  | Collect of { subj : int; ki : int; ks : int; ttl : int }
  | Update of { pick : int; ki : int; ks : int }
  | Flip of { pick : int; grant : bool }
  | Erase_subject of { subj : int }
  | Delete_pd of { pick : int }
  | Ttl_sweep
  | Advance of { ns : int }
  | Access of { subj : int }
  | Select_q of { q : int }

type script = op list

type cfg = { segmented : bool; gc_window : int; async_depth : int }

let base_cfg = { segmented = false; gc_window = 1; async_depth = 0 }

let all_cfgs =
  List.concat_map
    (fun segmented ->
      List.concat_map
        (fun gc_window ->
          List.map
            (fun async_depth -> { segmented; gc_window; async_depth })
            [ 0; 4; 64 ])
        [ 1; 4; 64 ])
    [ false; true ]

let budgets = [ 1; 7; 65_536 ]

let cfg_to_string c =
  Printf.sprintf "%s/gc=%d/async=%d"
    (if c.segmented then "seg" else "heap")
    c.gc_window c.async_depth

(* ------------------------------------------------------------------ *)
(* pools and fixed vocabulary                                         *)
(* ------------------------------------------------------------------ *)

let actor = "refine"
let type_name = "item"
let subjects_pool = [| "s0"; "s1"; "s2"; "s3"; "s4"; "s5" |]
let kstr_pool = [| "alpha"; "beta"; "gamma" |]
let short_ttl = 150_000
let long_ttl = 50_000_000

let queries =
  Query.
    [|
      Eq ("k_int", Value.VInt 1);
      Eq ("k_str", Value.VString "beta");
      Gt ("k_int", Value.VInt 2);
      And (Eq ("k_str", Value.VString "alpha"), Lt ("k_int", Value.VInt 3));
      Or (Eq ("k_int", Value.VInt 0), Eq ("k_str", Value.VString "gamma"));
      Contains ("note", "snt");
      Not (Eq ("k_int", Value.VInt 4));
      True;
    |]

let item_schema =
  match
    Schema.make ~name:type_name
      ~fields:
        [
          { Schema.fname = "k_int"; ftype = Value.TInt; required = true };
          { Schema.fname = "k_str"; ftype = Value.TString; required = true };
          { Schema.fname = "note"; ftype = Value.TString; required = true };
        ]
      ~default_consents:[ ("service", M.All) ]
      ~indexed_fields:[ "k_int"; "k_str" ] ()
  with
  | Ok s -> s
  | Error e -> failwith ("refine: bad item schema: " ^ e)

let mk_record ki ks sentinel =
  [
    ("k_int", Value.VInt (ki mod 5));
    ("k_str", Value.VString kstr_pool.(ks mod Array.length kstr_pool));
    ("note", Value.VString sentinel);
  ]

(* Sealed envelopes must carry no plaintext (residue scans look for the
   sentinels); a record hash still pins erased-payload equivalence to
   the full record bytes. *)
let seal_fn r = "sealed+" ^ Fnv.hash64_hex (Record.encode r)

(* ------------------------------------------------------------------ *)
(* rendering                                                          *)
(* ------------------------------------------------------------------ *)

let op_to_string = function
  | Collect { subj; ki; ks; ttl } ->
      Printf.sprintf "collect(s%d,ki=%d,ks=%d,ttl=%d)" (subj mod 6) ki ks
        (ttl mod 3)
  | Update { pick; ki; ks } -> Printf.sprintf "update(#%d,ki=%d,ks=%d)" pick ki ks
  | Flip { pick; grant } ->
      Printf.sprintf "flip(#%d,%s)" pick (if grant then "grant" else "deny")
  | Erase_subject { subj } -> Printf.sprintf "erase-subject(s%d)" (subj mod 6)
  | Delete_pd { pick } -> Printf.sprintf "delete(#%d)" pick
  | Ttl_sweep -> "ttl-sweep"
  | Advance { ns } -> Printf.sprintf "advance(%dns)" ns
  | Access { subj } -> Printf.sprintf "access(s%d)" (subj mod 6)
  | Select_q { q } -> Printf.sprintf "select(q%d)" (q mod Array.length queries)

let script_to_string s =
  "[" ^ String.concat "; " (List.map op_to_string s) ^ "]"

(* ------------------------------------------------------------------ *)
(* generation                                                         *)
(* ------------------------------------------------------------------ *)

let gen_collect prng =
  Collect
    {
      subj = Prng.int prng 6;
      ki = Prng.int prng 5;
      ks = Prng.int prng 3;
      ttl = Prng.int prng 3;
    }

let gen_op prng =
  match Prng.int prng 12 with
  | 0 | 1 | 2 -> gen_collect prng
  | 3 | 4 ->
      Update { pick = Prng.int prng 64; ki = Prng.int prng 5; ks = Prng.int prng 3 }
  | 5 -> Flip { pick = Prng.int prng 64; grant = Prng.bool prng }
  | 6 -> Erase_subject { subj = Prng.int prng 6 }
  | 7 -> Delete_pd { pick = Prng.int prng 64 }
  | 8 -> Ttl_sweep
  | 9 -> Advance { ns = 50_000 + Prng.int prng 400_000 }
  | 10 -> Access { subj = Prng.int prng 6 }
  | _ -> Select_q { q = Prng.int prng (Array.length queries) }

let gen_script prng =
  let len = 4 + Prng.int prng 12 in
  List.init len (fun i -> if i < 2 then gen_collect prng else gen_op prng)

(* ------------------------------------------------------------------ *)
(* the lockstep driver                                                *)
(* ------------------------------------------------------------------ *)

exception Divergence of string

type bug = Drop_consent_flip

type st = {
  clock : Clock.t;
  dev : BD.t;
  store : Dbfs.t;
  mutable model : Model.t;
  mutable trace : Model.t list;  (* newest first; ends with Model.empty *)
  mutable nsent : int;
  mutable sentinels : (string * string) list;  (* (sentinel, owner pd) *)
  mutable checked : int;
}

let dev_config cfg =
  {
    BD.block_size = 512;
    block_count = 4_096;
    read_latency = 10;
    write_latency = 20;
    byte_latency = 0;
    vectored = true;
    async = cfg.async_depth > 0;
    queue_depth = max 1 cfg.async_depth;
  }

let make_st cfg =
  let clock = Clock.create () in
  let dev = BD.create ~config:(dev_config cfg) ~clock () in
  let store = Dbfs.format ~segmented:cfg.segmented dev ~journal_blocks:256 in
  (match Dbfs.create_type store ~actor item_schema with
  | Ok () -> ()
  | Error e -> failwith ("refine: create_type: " ^ Dbfs.error_to_string e));
  Dbfs.set_group_commit store cfg.gc_window;
  {
    clock;
    dev;
    store;
    model = Model.empty;
    trace = [ Model.empty ];
    nsent = 0;
    sentinels = [];
    checked = 0;
  }

let commit st m =
  st.model <- m;
  st.trace <- m :: st.trace

let fresh_sentinel st =
  let s = Printf.sprintf "snt%05d" st.nsent in
  st.nsent <- st.nsent + 1;
  s

let err_str = Dbfs.error_to_string

let diverge fmt = Printf.ksprintf (fun s -> raise (Divergence s)) fmt

(* One observable comparison: canonical strings on both sides. *)
let expect st what ~model ~dbfs =
  st.checked <- st.checked + 1;
  if model <> dbfs then diverge "%s: model=%S dbfs=%S" what model dbfs

let ids_str l = String.concat "," l

let live_pds st = Model.select st.model type_name Query.True
let all_pds st = Model.list_pds st.model type_name

let model_pd st id =
  match Model.find st.model id with
  | Some p -> p
  | None -> diverge "internal: model lost pd %s" id

(* Erase one pd on both sides (used by Erase_subject and Ttl_sweep).
   Outside compare mode a real-side failure (e.g. a bit-flipped record
   that no longer reads back) skips the model micro-op too, keeping the
   two sides in lockstep by construction. *)
let erase_one ~compare st pd =
  match Model.find st.model pd with
  | Some p when p.Model.p_state = Model.Live -> (
      let sealed = seal_fn p.Model.p_record in
      match Dbfs.erase_with st.store ~actor pd ~seal:seal_fn with
      | Ok () -> (
          match Model.erase st.model pd ~sealed with
          | Ok m -> commit st m
          | Error _ -> diverge "model rejected erase(%s) the store accepted" pd)
      | Error e ->
          if compare then diverge "erase(%s) failed: %s" pd (err_str e))
  | _ -> ()

let step ~compare ?bug st op =
  match op with
  | Collect { subj; ki; ks; ttl } -> (
      let subject = subjects_pool.(subj mod Array.length subjects_pool) in
      let s = fresh_sentinel st in
      let record = mk_record ki ks s in
      let ttl =
        match ttl mod 3 with
        | 0 -> None
        | 1 -> Some short_ttl
        | _ -> Some long_ttl
      in
      let captured = ref None in
      match
        Dbfs.insert st.store ~actor ~subject ~type_name ~record
          ~membrane_of:(fun ~pd_id ->
            let m =
              M.make ~pd_id ~type_name ~subject_id:subject ~origin:M.Subject
                ~consents:[ ("service", M.All); ("analytics", M.All) ]
                ~created_at:(Clock.now st.clock) ?ttl ()
            in
            captured := Some m;
            m)
      with
      | Ok pd_id ->
          let membrane = Option.get !captured in
          st.sentinels <- (s, pd_id) :: st.sentinels;
          commit st
            (Model.insert st.model ~pd_id ~type_name ~subject ~record ~membrane)
      | Error e -> if compare then diverge "collect failed: %s" (err_str e))
  | Update { pick; ki; ks } -> (
      match live_pds st with
      | [] -> ()
      | live -> (
          let pd = List.nth live (pick mod List.length live) in
          let s = fresh_sentinel st in
          let record = mk_record ki ks s in
          match Dbfs.update_record st.store ~actor pd record with
          | Ok () -> (
              st.sentinels <- (s, pd) :: st.sentinels;
              match Model.update_record st.model pd record with
              | Ok m -> commit st m
              | Error _ ->
                  diverge "model rejected update(%s) the store accepted" pd)
          | Error e ->
              if compare then diverge "update(%s) failed: %s" pd (err_str e)))
  | Flip { pick; grant } -> (
      match all_pds st with
      | [] -> ()
      | all -> (
          let pd = List.nth all (pick mod List.length all) in
          let p = model_pd st pd in
          let m' =
            M.set_consent p.Model.p_membrane ~purpose:"analytics"
              (if grant then M.All else M.Denied)
          in
          let real =
            match bug with
            | Some Drop_consent_flip -> Ok ()  (* the injected bug: lost write *)
            | None -> Dbfs.update_membrane st.store ~actor pd m'
          in
          match real with
          | Ok () -> (
              match Model.update_membrane st.model pd m' with
              | Ok m -> commit st m
              | Error _ ->
                  diverge "model rejected flip(%s) the store accepted" pd)
          | Error e ->
              if compare then diverge "flip(%s) failed: %s" pd (err_str e)))
  | Erase_subject { subj } ->
      let subject = subjects_pool.(subj mod Array.length subjects_pool) in
      List.iter (erase_one ~compare st) (Model.pds_of_subject st.model subject)
  | Delete_pd { pick } -> (
      match all_pds st with
      | [] -> ()
      | all -> (
          let pd = List.nth all (pick mod List.length all) in
          match Dbfs.delete st.store ~actor pd with
          | Ok () -> (
              match Model.delete st.model pd with
              | Ok m -> commit st m
              | Error _ ->
                  diverge "model rejected delete(%s) the store accepted" pd)
          | Error e ->
              if compare then diverge "delete(%s) failed: %s" pd (err_str e)))
  | Ttl_sweep ->
      let now = Clock.now st.clock in
      let expired = Model.expired st.model ~now in
      (if compare then
         match Dbfs.expired_pds st.store ~actor ~now with
         | Ok l ->
             expect st "expired_pds" ~model:(ids_str expired) ~dbfs:(ids_str l)
         | Error e -> diverge "expired_pds failed: %s" (err_str e));
      List.iter (erase_one ~compare st) expired
  | Advance { ns } -> Clock.advance st.clock ns
  | Access { subj } ->
      if compare then (
        let subject = subjects_pool.(subj mod Array.length subjects_pool) in
        match Dbfs.export_subject st.store ~actor subject with
        | Ok out ->
            expect st
              (Printf.sprintf "export(%s)" subject)
              ~model:(Model.export st.model subject) ~dbfs:out
        | Error e -> diverge "export(%s) failed: %s" subject (err_str e))
  | Select_q { q } ->
      if compare then (
        let q = q mod Array.length queries in
        let pred = queries.(q) in
        let expected = ids_str (Model.select st.model type_name pred) in
        List.iter
          (fun use_indexes ->
            match Dbfs.select st.store ~actor ~use_indexes type_name pred with
            | Ok ids ->
                expect st
                  (Printf.sprintf "select(q%d,indexes=%b)" q use_indexes)
                  ~model:expected ~dbfs:(ids_str ids)
            | Error e -> diverge "select(q%d) failed: %s" q (err_str e))
          [ true; false ])

(* Full-state audit: every observable of every pd, every query under
   both planner paths, expiry and exports. *)
let check_state st =
  (match Dbfs.list_pds st.store ~actor type_name with
  | Ok ids -> expect st "list_pds" ~model:(ids_str (all_pds st)) ~dbfs:(ids_str ids)
  | Error e -> diverge "list_pds failed: %s" (err_str e));
  (match Dbfs.subjects st.store ~actor with
  | Ok subs ->
      expect st "subjects"
        ~model:(ids_str (Model.subjects st.model))
        ~dbfs:(ids_str (List.sort compare subs))
  | Error e -> diverge "subjects failed: %s" (err_str e));
  Array.iter
    (fun subject ->
      (match Dbfs.pds_of_subject st.store ~actor subject with
      | Ok ids ->
          expect st
            (Printf.sprintf "pds_of_subject(%s)" subject)
            ~model:(ids_str (Model.pds_of_subject st.model subject))
            ~dbfs:(ids_str ids)
      | Error e -> diverge "pds_of_subject(%s) failed: %s" subject (err_str e));
      match Dbfs.export_subject st.store ~actor subject with
      | Ok out ->
          expect st
            (Printf.sprintf "export(%s)" subject)
            ~model:(Model.export st.model subject) ~dbfs:out
      | Error e -> diverge "export(%s) failed: %s" subject (err_str e))
    subjects_pool;
  List.iter
    (fun p ->
      let id = p.Model.p_id in
      (match Dbfs.entry_info st.store ~actor id with
      | Ok (tname, subject, erased) ->
          expect st
            (Printf.sprintf "entry_info(%s)" id)
            ~model:
              (Printf.sprintf "%s|%s|%b" p.Model.p_type p.Model.p_subject
                 (p.Model.p_state <> Model.Live))
            ~dbfs:(Printf.sprintf "%s|%s|%b" tname subject erased)
      | Error e -> diverge "entry_info(%s) failed: %s" id (err_str e));
      (match Dbfs.get_membrane st.store ~actor id with
      | Ok m ->
          expect st
            (Printf.sprintf "membrane(%s)" id)
            ~model:(M.encode p.Model.p_membrane) ~dbfs:(M.encode m)
      | Error e -> diverge "get_membrane(%s) failed: %s" id (err_str e));
      match p.Model.p_state with
      | Model.Live -> (
          match Dbfs.get_record st.store ~actor id with
          | Ok r ->
              expect st
                (Printf.sprintf "record(%s)" id)
                ~model:(Record.encode p.Model.p_record) ~dbfs:(Record.encode r)
          | Error e -> diverge "get_record(%s) failed: %s" id (err_str e))
      | Model.Erased sealed -> (
          (match Dbfs.get_record st.store ~actor id with
          | Error (Dbfs.Erased _) -> st.checked <- st.checked + 1
          | Ok _ -> diverge "get_record(%s): erased pd read back plaintext" id
          | Error e ->
              diverge "get_record(%s): expected Erased, got %s" id (err_str e));
          match Dbfs.erased_payload st.store ~actor id with
          | Ok got ->
              expect st (Printf.sprintf "erased_payload(%s)" id) ~model:sealed
                ~dbfs:got
          | Error e -> diverge "erased_payload(%s) failed: %s" id (err_str e)))
    (Model.pds st.model);
  Array.iteri
    (fun i pred ->
      let expected = ids_str (Model.select st.model type_name pred) in
      List.iter
        (fun use_indexes ->
          match Dbfs.select st.store ~actor ~use_indexes type_name pred with
          | Ok ids ->
              expect st
                (Printf.sprintf "audit-select(q%d,indexes=%b)" i use_indexes)
                ~model:expected ~dbfs:(ids_str ids)
          | Error e -> diverge "audit-select(q%d) failed: %s" i (err_str e))
        [ true; false ])
    queries;
  let now = Clock.now st.clock in
  match Dbfs.expired_pds st.store ~actor ~now with
  | Ok l ->
      expect st "audit-expired"
        ~model:(ids_str (Model.expired st.model ~now))
        ~dbfs:(ids_str l)
  | Error e -> diverge "expired_pds failed: %s" (err_str e)

(* Clean-mode residue rule: every sentinel belonging to an erased or
   deleted pd must be gone from the raw medium (erase/delete destroy
   synchronously, including the segmented dirty set via purge).
   Sentinels updated away from a still-live pd are exempt: the segmented
   allocator may legally retain them until the next purge/compaction. *)
let check_residue_clean st =
  List.iter
    (fun (s, pd) ->
      let destroyed =
        match Model.find st.model pd with
        | None -> true
        | Some p -> p.Model.p_state <> Model.Live
      in
      if destroyed then
        match BD.scan st.dev s with
        | [] -> st.checked <- st.checked + 1
        | (b, off) :: _ ->
            diverge "residue: sentinel %s of destroyed pd %s at block %d+%d" s
              pd b off)
    st.sentinels

let run_script ?bug cfg script =
  let st = make_st cfg in
  try
    List.iter (step ~compare:true ?bug st) script;
    BD.drain st.dev;
    check_state st;
    List.iter
      (fun b ->
        Dbfs.set_cache_budget st.store b;
        check_state st)
      budgets;
    check_residue_clean st;
    Ok st.checked
  with
  | Divergence d -> Error d
  | e -> Error ("exception escaped: " ^ Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* crash refinement                                                   *)
(* ------------------------------------------------------------------ *)

type fault_spec = {
  fs_crash : int option;
  fs_acts : (int * BD.Fault_plan.action) list;
}

let spec_to_plan spec =
  let p = BD.Fault_plan.create () in
  List.iter (fun (n, a) -> BD.Fault_plan.on_write p ~nth:n a) spec.fs_acts;
  Option.iter (BD.Fault_plan.crash_after_writes p) spec.fs_crash;
  p

let spec_to_string spec = BD.Fault_plan.to_string (spec_to_plan spec)

(* Reference run: same script, same cfg, empty plan — counts the write
   ordinals the fault plan schedules against, and exposes the layout for
   data-region bit flips. *)
let count_writes cfg script =
  let st = make_st cfg in
  let plan = BD.Fault_plan.create () in
  BD.set_fault_plan st.dev (Some plan);
  List.iter (step ~compare:false st) script;
  BD.drain st.dev;
  (BD.Fault_plan.writes_seen plan, Dbfs.layout st.store)

(* Faults are drawn only from the flavours the write path must ride out
   or repair must heal: transient failures, torn writes, data-region bit
   flips.  Permanent write failures are the degraded-mode law's job
   (check_degraded), not the crash-refinement rule's. *)
let derive_spec ~spec_seed cfg script =
  let writes, lay = count_writes cfg script in
  let prng = Prng.create ~seed:(Int64.of_int spec_seed) () in
  let writes = max 1 writes in
  let crash = 1 + Prng.int prng writes in
  let nacts = Prng.int prng 3 in
  let acts =
    List.init nacts (fun _ ->
        let nth = 1 + Prng.int prng writes in
        let act =
          match Prng.int prng 3 with
          | 0 -> BD.Fault_plan.Fail_write { transient = true }
          | 1 -> BD.Fault_plan.Torn_write { keep_runs = Prng.int prng 3 }
          | _ ->
              BD.Fault_plan.Bit_flip
                {
                  block =
                    lay.Dbfs.l_data_start
                    + Prng.int prng (lay.Dbfs.l_block_count - lay.Dbfs.l_data_start);
                  byte = Prng.int prng 512;
                  bit = Prng.int prng 8;
                }
        in
        (nth, act))
  in
  { fs_crash = Some crash; fs_acts = acts }

let plan_for_script ~spec_seed cfg script =
  spec_to_string (derive_spec ~spec_seed cfg script)

(* Canonical rendering of the real store in Model.dump's format, so the
   recovered image can be compared against model prefixes. *)
let dump_real store =
  let ( let* ) = Result.bind in
  let fail what e = Error (what ^ " failed: " ^ err_str e) in
  match Dbfs.list_pds store ~actor type_name with
  | Error e -> fail "list_pds" e
  | Ok ids ->
      let rec go acc = function
        | [] -> Ok (String.concat "\n" (List.sort compare acc))
        | id :: rest ->
            let* tname, subject, erased =
              Result.map_error
                (fun e -> Printf.sprintf "entry_info(%s) failed: %s" id (err_str e))
                (Dbfs.entry_info store ~actor id)
            in
            let* m =
              Result.map_error
                (fun e ->
                  Printf.sprintf "get_membrane(%s) failed: %s" id (err_str e))
                (Dbfs.get_membrane store ~actor id)
            in
            let* state =
              if erased then
                Result.map_error
                  (fun e ->
                    Printf.sprintf "erased_payload(%s) failed: %s" id (err_str e))
                  (Result.map (fun s -> "erased:" ^ s)
                     (Dbfs.erased_payload store ~actor id))
              else
                Result.map_error
                  (fun e ->
                    Printf.sprintf "get_record(%s) failed: %s" id (err_str e))
                  (Result.map
                     (fun r -> "live:" ^ Record.encode r)
                     (Dbfs.get_record store ~actor id))
            in
            go
              (Printf.sprintf "%s|%s|%s|%s|%s" id tname subject state
                 (M.encode m)
              :: acc)
              rest
      in
      go [] ids

let run_crash ~spec_seed cfg script =
  let spec = derive_spec ~spec_seed cfg script in
  let plan = spec_to_plan spec in
  let plan_str = BD.Fault_plan.to_string plan in
  let fail fmt =
    Printf.ksprintf (fun s -> Error (Printf.sprintf "%s [plan %s]" s plan_str)) fmt
  in
  let st = make_st cfg in
  BD.set_fault_plan st.dev (Some plan);
  match
    List.iter (step ~compare:false st) script;
    BD.drain st.dev
  with
  | exception e -> fail "exception escaped the write path: %s" (Printexc.to_string e)
  | () -> (
      let image =
        match BD.crash_image st.dev with
        | Some i -> i
        | None -> BD.snapshot st.dev
      in
      let clock2 = Clock.create () in
      let dev2 = BD.create ~config:(dev_config cfg) ~clock:clock2 () in
      BD.restore dev2 image;
      match Dbfs.mount dev2 with
      | Error m -> fail "mount after crash failed: %s" m
      | Ok store2 -> (
          let rep = Dbfs.fsck_repair store2 in
          let quarantined = List.map fst rep.Dbfs.rr_quarantined in
          if not rep.Dbfs.rr_clean then
            fail "fsck_repair not clean: %s"
              (String.concat "; " rep.Dbfs.rr_problems)
          else
            match Dbfs.degraded store2 with
            | Some why -> fail "degraded after repair: %s" why
            | None -> (
                match dump_real store2 with
                | Error d -> fail "post-repair read: %s" d
                | Ok dump ->
                    let matched =
                      List.exists
                        (fun m ->
                          Model.dump_excluding m ~exclude:quarantined = dump)
                        st.trace
                    in
                    if not matched then
                      fail
                        "recovered state matches no model prefix \
                         (quarantined: [%s])"
                        (String.concat "," quarantined)
                    else
                      (* post-repair residue rule is absolute: repair
                         scrubs every free block, so any sentinel not in
                         a live record of the RECOVERED store (recovery
                         may land at an earlier prefix, where a later-
                         destroyed pd is still legitimately live) must
                         be gone from the medium. *)
                      let live_notes =
                        match Dbfs.list_pds store2 ~actor type_name with
                        | Error _ -> []
                        | Ok ids ->
                            List.filter_map
                              (fun id ->
                                match Dbfs.get_record store2 ~actor id with
                                | Ok r -> (
                                    match List.assoc_opt "note" r with
                                    | Some (Value.VString s) -> Some s
                                    | _ -> None)
                                | Error _ -> None)
                              ids
                      in
                      let bad =
                        List.find_opt
                          (fun (s, _) ->
                            (not (List.mem s live_notes))
                            && BD.scan dev2 s <> [])
                          st.sentinels
                      in
                      (match bad with
                      | Some (s, pd) ->
                          fail "post-repair residue: sentinel %s of pd %s" s pd
                      | None -> Ok (1 + List.length spec.fs_acts)))))

(* ------------------------------------------------------------------ *)
(* degraded-mode law                                                  *)
(* ------------------------------------------------------------------ *)

let check_degraded script =
  let st = make_st base_cfg in
  try
    List.iter (step ~compare:true st) script;
    check_state st;
    (* Damage: permanently fault every data-region block not owned by a
       surviving entry or an index page — the next allocation must hit a
       bad block and flip the store into degraded read-only mode. *)
    let lay = Dbfs.layout st.store in
    let owned = Hashtbl.create 64 in
    List.iter
      (fun p ->
        match Dbfs.entry_blocks st.store ~actor p.Model.p_id with
        | Ok (rb, mb) -> List.iter (fun b -> Hashtbl.replace owned b ()) (rb @ mb)
        | Error e -> diverge "entry_blocks(%s) failed: %s" p.Model.p_id (err_str e))
      (Model.pds st.model);
    List.iter
      (fun (b, _) -> Hashtbl.replace owned b ())
      (Dbfs.index_page_blocks st.store);
    for b = lay.Dbfs.l_data_start to lay.Dbfs.l_block_count - 1 do
      if not (Hashtbl.mem owned b) then BD.inject_fault st.dev b
    done;
    (* Trigger: the next mutation that allocates must fail... *)
    let trigger =
      Dbfs.insert st.store ~actor ~subject:"s0" ~type_name
        ~record:(mk_record 1 1 "trigger")
        ~membrane_of:(fun ~pd_id ->
          M.make ~pd_id ~type_name ~subject_id:"s0" ~origin:M.Subject
            ~consents:[ ("service", M.All) ]
            ~created_at:(Clock.now st.clock) ())
    in
    (match trigger with
    | Ok id -> diverge "insert %s succeeded on an exhausted device" id
    | Error _ -> ());
    (match Dbfs.degraded st.store with
    | None -> diverge "store not degraded after a permanent write failure"
    | Some _ -> ());
    (* ...every further mutation must answer Degraded... *)
    let expect_degraded what = function
      | Error (Dbfs.Degraded _) -> st.checked <- st.checked + 1
      | Ok _ -> diverge "%s succeeded in degraded mode" what
      | Error e -> diverge "%s: expected Degraded, got %s" what (err_str e)
    in
    expect_degraded "insert"
      (Dbfs.insert st.store ~actor ~subject:"s1" ~type_name
         ~record:(mk_record 2 2 "trigger2")
         ~membrane_of:(fun ~pd_id ->
           M.make ~pd_id ~type_name ~subject_id:"s1" ~origin:M.Subject
             ~consents:[ ("service", M.All) ]
             ~created_at:(Clock.now st.clock) ()));
    List.iter
      (fun p ->
        let id = p.Model.p_id in
        expect_degraded
          (Printf.sprintf "update_record(%s)" id)
          (Dbfs.update_record st.store ~actor id (mk_record 0 0 "trigger3"));
        expect_degraded
          (Printf.sprintf "update_membrane(%s)" id)
          (Dbfs.update_membrane st.store ~actor id
             (M.withdraw p.Model.p_membrane ~purpose:"service"));
        expect_degraded
          (Printf.sprintf "erase(%s)" id)
          (Dbfs.erase_with st.store ~actor id ~seal:seal_fn);
        expect_degraded
          (Printf.sprintf "delete(%s)" id)
          (Dbfs.delete st.store ~actor id))
      (Model.pds st.model);
    (* ...while Art. 15 access still answers from the surviving data,
       exactly as the model answered before the damage. *)
    Array.iter
      (fun subject ->
        match Dbfs.export_subject st.store ~actor subject with
        | Ok out ->
            expect st
              (Printf.sprintf "degraded-export(%s)" subject)
              ~model:(Model.export st.model subject) ~dbfs:out
        | Error e -> diverge "degraded export(%s) failed: %s" subject (err_str e))
      subjects_pool;
    List.iter
      (fun p ->
        match p.Model.p_state with
        | Model.Live -> (
            match Dbfs.get_record st.store ~actor p.Model.p_id with
            | Ok r ->
                expect st
                  (Printf.sprintf "degraded-record(%s)" p.Model.p_id)
                  ~model:(Record.encode p.Model.p_record)
                  ~dbfs:(Record.encode r)
            | Error e ->
                diverge "degraded get_record(%s) failed: %s" p.Model.p_id
                  (err_str e))
        | Model.Erased _ -> ())
      (Model.pds st.model);
    Ok ()
  with
  | Divergence d -> Error d
  | e -> Error ("exception escaped: " ^ Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* shrinking                                                          *)
(* ------------------------------------------------------------------ *)

(* Greedy op removal to fixpoint: drop any op whose removal preserves
   the failure, repeating until no single removal does. *)
let shrink_script still_fails script =
  let rec pass s =
    let n = List.length s in
    let rec try_at i =
      if i >= n then s
      else
        let cand = List.filteri (fun j _ -> j <> i) s in
        if still_fails cand then pass cand else try_at (i + 1)
    in
    try_at 0
  in
  if still_fails script then pass script else script

type failure = {
  f_mode : string;
  f_cfg : string;
  f_plan : string;
  f_seed : int;
  f_spec_seed : int;
  f_script : script;
  f_detail : string;
  f_shrunk_from : int;
}

let failure_to_string f =
  Printf.sprintf
    "FAIL [%s %s] seed=%d%s%s script(%d ops, shrunk from %d)=%s: %s" f.f_mode
    f.f_cfg f.f_seed
    (if f.f_spec_seed <> 0 then Printf.sprintf " spec_seed=%d" f.f_spec_seed
     else "")
    (if f.f_plan <> "" then " " ^ f.f_plan else "")
    (List.length f.f_script) f.f_shrunk_from
    (script_to_string f.f_script)
    f.f_detail

type report = {
  r_seed : int;
  r_scripts : int;
  r_ops_checked : int;
  r_fault_points : int;
  r_crash_runs : int;
  r_lin_domains : int list;
  r_failures : failure list;
}

let lockstep_failure ?bug ~mode ~seed cfg script detail =
  let still_fails s = Result.is_error (run_script ?bug cfg s) in
  let shrunk = shrink_script still_fails script in
  let detail =
    match run_script ?bug cfg shrunk with Error d -> d | Ok _ -> detail
  in
  {
    f_mode = mode;
    f_cfg = cfg_to_string cfg;
    f_plan = "";
    f_seed = seed;
    f_spec_seed = 0;
    f_script = shrunk;
    f_detail = detail;
    f_shrunk_from = List.length script;
  }

let crash_failure ~seed ~spec_seed cfg script detail =
  let still_fails s = Result.is_error (run_crash ~spec_seed cfg s) in
  let shrunk = shrink_script still_fails script in
  let detail =
    match run_crash ~spec_seed cfg shrunk with Error d -> d | Ok _ -> detail
  in
  {
    f_mode = "crash";
    f_cfg = cfg_to_string cfg;
    f_plan = plan_for_script ~spec_seed cfg shrunk;
    f_seed = seed;
    f_spec_seed = spec_seed;
    f_script = shrunk;
    f_detail = detail;
    f_shrunk_from = List.length script;
  }

let find_counterexample ?bug ~seed ~max_scripts cfg =
  let prng = Prng.create ~seed:(Int64.of_int seed) () in
  let rec go i =
    if i >= max_scripts then None
    else
      let script = gen_script (Prng.split prng) in
      match run_script ?bug cfg script with
      | Ok _ -> go (i + 1)
      | Error d ->
          Some (lockstep_failure ?bug ~mode:"lockstep" ~seed cfg script d)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* linearizability                                                    *)
(* ------------------------------------------------------------------ *)

(* Each shard owns a disjoint store (clock, device, Dbfs and model all
   created inside the shard's task, so the clock's single-writer
   assertion also polices domain confinement).  Every shard is lockstep-
   checked internally, and the parallel execution must reproduce the
   sequential one observable-for-observable — for disjoint shards, any
   interleaving is equivalent to the sequential composition, so this is
   exactly "matches some sequential execution of the model". *)
let run_shard script =
  let st = make_st base_cfg in
  try
    List.iter (step ~compare:true st) script;
    BD.drain st.dev;
    check_state st;
    Ok (Model.dump st.model, st.checked)
  with
  | Divergence d -> Error d
  | e -> Error ("exception escaped: " ^ Printexc.to_string e)

let run_linearizability ~seed domains =
  let scripts =
    List.init domains (fun j ->
        gen_script
          (Prng.create ~seed:(Int64.of_int ((seed * 1000) + (domains * 10) + j)) ()))
  in
  let sequential = List.map run_shard scripts in
  let parallel =
    Pool.with_pool ~workers:domains (fun pool ->
        Pool.map_list pool run_shard scripts)
  in
  let checked =
    List.fold_left
      (fun acc -> function Ok (_, n) -> acc + n | Error _ -> acc)
      0 sequential
  in
  let failures =
    List.concat
      (List.map2
         (fun script -> function
           | seq_r, par_r when seq_r = par_r -> (
               match seq_r with
               | Ok _ -> []
               | Error d ->
                   [ lockstep_failure ~mode:"linearizability" ~seed base_cfg
                       script d ])
           | seq_r, par_r ->
               let show = function
                 | Ok (dump, n) -> Printf.sprintf "ok(%d checks):%s" n dump
                 | Error d -> "error:" ^ d
               in
               [
                 {
                   f_mode = "linearizability";
                   f_cfg = cfg_to_string base_cfg;
                   f_plan = "";
                   f_seed = seed;
                   f_spec_seed = 0;
                   f_script = script;
                   f_detail =
                     Printf.sprintf
                       "parallel execution at %d domains diverged from \
                        sequential: seq=%s par=%s"
                       domains (show seq_r) (show par_r);
                   f_shrunk_from = List.length script;
                 };
               ])
         scripts
         (List.combine sequential parallel))
  in
  (checked, failures)

(* ------------------------------------------------------------------ *)
(* the campaign                                                       *)
(* ------------------------------------------------------------------ *)

let lin_domains = [ 1; 2; 4 ]

let default_scripts () =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 4)
  | None -> 4

let run ?(seed = 11) ?scripts () =
  let scripts = match scripts with Some n -> n | None -> default_scripts () in
  let prng = Prng.create ~seed:(Int64.of_int seed) () in
  let checked = ref 0 in
  let fault_points = ref 0 in
  let crash_runs = ref 0 in
  let failures = ref [] in
  for i = 0 to scripts - 1 do
    let script = gen_script (Prng.split prng) in
    let cfg0 = { base_cfg with segmented = i mod 2 = 1 } in
    (match run_script cfg0 script with
    | Ok n -> checked := !checked + n
    | Error d ->
        failures :=
          lockstep_failure ~mode:"lockstep" ~seed cfg0 script d :: !failures);
    List.iteri
      (fun ci cfg ->
        let spec_seed = (seed * 100_000) + (i * 100) + ci + 1 in
        incr crash_runs;
        match run_crash ~spec_seed cfg script with
        | Ok fp ->
            fault_points := !fault_points + fp;
            incr checked
        | Error d ->
            failures :=
              crash_failure ~seed ~spec_seed cfg script d :: !failures)
      all_cfgs
  done;
  List.iter
    (fun domains ->
      let n, fs = run_linearizability ~seed domains in
      checked := !checked + n;
      failures := fs @ !failures)
    lin_domains;
  {
    r_seed = seed;
    r_scripts = scripts;
    r_ops_checked = !checked;
    r_fault_points = !fault_points;
    r_crash_runs = !crash_runs;
    r_lin_domains = lin_domains;
    r_failures = List.rev !failures;
  }

let conformance_pct r =
  if r.r_failures = [] then 100.0
  else
    let total = max 1 (r.r_ops_checked + List.length r.r_failures) in
    100.0 *. float_of_int r.r_ops_checked /. float_of_int total

let all_pass r = r.r_failures = []

(* ------------------------------------------------------------------ *)
(* reporting                                                          *)
(* ------------------------------------------------------------------ *)

module Json = Rgpdos_util.Json

let schema_id = "rgpdos-model-check/1"

let to_json ?(wall_ms = 0.0) r =
  let num i = Json.Num (float_of_int i) in
  let failure_obj f =
    Json.Obj
      [
        ("mode", Json.Str f.f_mode);
        ("cfg", Json.Str f.f_cfg);
        ("plan", Json.Str f.f_plan);
        ("seed", num f.f_seed);
        ("spec_seed", num f.f_spec_seed);
        ("script", Json.Str (script_to_string f.f_script));
        ("detail", Json.Str f.f_detail);
        ("shrunk_from", num f.f_shrunk_from);
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str schema_id);
      ("seed", num r.r_seed);
      ("scripts", num r.r_scripts);
      ("ops_checked", num r.r_ops_checked);
      ("fault_points", num r.r_fault_points);
      ("crash_runs", num r.r_crash_runs);
      ("crash_configs", num (List.length all_cfgs));
      ("lin_domains", Json.List (List.map num r.r_lin_domains));
      ("cache_budgets", Json.List (List.map num budgets));
      ("conformance_pct", Json.Num (conformance_pct r));
      ("all_pass", Json.Bool (all_pass r));
      ("failures", Json.List (List.map failure_obj r.r_failures));
      ("wall_ms", Json.Num wall_ms);
    ]

let render r =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "model refinement check (seed=%d, %d scripts)\n" r.r_seed r.r_scripts;
  add "  observable comparisons : %d\n" r.r_ops_checked;
  add "  crash-refinement runs  : %d across %d configs, %d fault points\n"
    r.r_crash_runs (List.length all_cfgs) r.r_fault_points;
  add "  linearizability domains: %s\n"
    (String.concat "/" (List.map string_of_int r.r_lin_domains));
  add "  cache budgets audited  : %s\n"
    (String.concat "/" (List.map string_of_int budgets));
  add "  conformance            : %.2f%% (%d failures)\n" (conformance_pct r)
    (List.length r.r_failures);
  List.iter (fun f -> add "  %s\n" (failure_to_string f)) r.r_failures;
  Buffer.contents b
