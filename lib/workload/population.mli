(** Synthetic subject population.

    The paper's target workloads (and GDPRBench, its cited evaluation
    framework) need a population of data subjects with personal records
    and heterogeneous consent decisions.  Everything is derived
    deterministically from a PRNG so experiments are reproducible. *)

type person = {
  subject_id : string;
  name : string;
  email : string;
  year_of_birth : int;
  consent_profile : (string * Rgpdos_membrane.Membrane.consent_scope) list;
      (** this subject's decision for each workload purpose *)
}

val purposes : string list
(** The workload's processing purposes: ["service"] (contractual
    necessity, everyone), ["analytics"] (view-restricted for some),
    ["marketing"] (frequently denied). *)

val generate : Rgpdos_util.Prng.t -> n:int -> person list
(** [n] distinct people.  Consent skew: service always granted, analytics
    granted-as-view ~70%, marketing granted ~30%. *)

val record_of : person -> Rgpdos_dbfs.Record.t
(** The typed DBFS record for a person (matches {!type_declaration}). *)

val baseline_fields : person -> (string * string) list
(** The same data as flat string pairs for the baseline engine. *)

val allowed_purposes_of : person -> string list
(** Purposes this person's consents allow at all (for the baseline's
    row metadata). *)

val type_declaration : string
(** Declaration-language source for the workload's PD type ("person") and
    the three purposes; feed it to [Machine.load_declarations]. *)

val type_name : string
