(** Execute GDPRBench op streams against the three systems under test and
    collect simulated-time statistics (experiment E2's engine).

    The three backends:
    - {b rgpdos}: a booted {!Rgpdos.Machine} — processings run through
      PS/DED, rights through the machine API;
    - {b db-gdpr}: the Fig-2 baseline — {!Rgpdos_baseline.Userdb} in
      [Gdpr] mode over the journaling FS;
    - {b db-vanilla}: the same engine with enforcement off (the
      no-compliance performance bound).

    Latencies are {i simulated} nanoseconds from the shared virtual
    clock, so they reflect the modelled device/CPU costs rather than host
    noise; wall-clock totals are also reported. *)

type backend

val backend_name : backend -> string

val machine_backend :
  seed:int64 -> population:Population.person list -> backend
(** Boots a machine, loads {!Population.type_declaration}, registers one
    reader processing per purpose (shardable — counting readers declare
    [reduce_int_sum]), and collects the population. *)

val machine_backend_full :
  ?pool:Rgpdos_util.Pool.t ->
  seed:int64 ->
  population:Population.person list ->
  unit ->
  backend * Rgpdos.Machine.t
(** Like {!machine_backend} but also returns the booted machine, so
    callers (the sharded driver, tests) can reach its audit chain and
    clock.  [?pool] runs shardable DED executions on real domains; it
    must {i not} be the pool the backend itself runs on (never await
    inside a pooled task). *)

val baseline_backend :
  seed:int64 ->
  mode:Rgpdos_baseline.Userdb.mode ->
  population:Population.person list ->
  backend

type result = {
  backend : string;
  total_ops : int;
  unsupported : int;
      (** ops the backend cannot express (e.g. audit verification on the
          baseline, which has no tamper-evident log) *)
  errors : int;
  total_simulated_ns : int;
  wall_seconds : float;
  per_op : (string * Rgpdos_util.Stats.summary) list;
      (** simulated-ns summaries keyed by op kind, sorted *)
}

val run : backend -> Gdprbench.op list -> result

val ops_per_simulated_second : result -> float

val pp_result : Format.formatter -> result -> unit
