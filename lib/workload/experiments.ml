module Clock = Rgpdos_util.Clock
module Prng = Rgpdos_util.Prng
module Table = Rgpdos_util.Table
module Membrane = Rgpdos_membrane.Membrane
module Value = Rgpdos_dbfs.Value
module Record = Rgpdos_dbfs.Record
module Schema = Rgpdos_dbfs.Schema
module Query = Rgpdos_dbfs.Query
module Dbfs = Rgpdos_dbfs.Dbfs
module Block_device = Rgpdos_block.Block_device
module Journalfs = Rgpdos_journalfs.Journalfs
module Userdb = Rgpdos_baseline.Userdb
module Process_model = Rgpdos_baseline.Process_model
module Machine = Rgpdos.Machine
module Ded = Rgpdos_ded.Ded
module Processing = Rgpdos_ded.Processing
module Ps = Rgpdos_ps.Processing_store
module Syscall = Rgpdos_kernel.Syscall
module Resource = Rgpdos_kernel.Resource
module Subkernel = Rgpdos_kernel.Subkernel
module Scheduler = Rgpdos_kernel.Scheduler
module Audit_log = Rgpdos_audit.Audit_log
module Authority = Rgpdos_gdpr.Authority
module Ttl_sweeper = Rgpdos_gdpr.Ttl_sweeper

let fmt_f = Table.fmt_float

(* Boot a machine sized for [n] PD entries and loaded with the workload
   declarations. *)
let boot_sized ?(vectored = true) ?(async = false) ?queue_depth ~seed ~n () =
  let config =
    {
      Block_device.default_config with
      Block_device.block_count = max 16_384 ((n * 8) + 4_096);
      Block_device.vectored;
      Block_device.async;
      Block_device.queue_depth =
        (match queue_depth with
        | Some d -> max 1 d
        | None -> Block_device.default_config.Block_device.queue_depth);
    }
  in
  let m = Machine.boot ~seed ~pd_device:config ()
  in
  (match Machine.load_declarations m Population.type_declaration with
  | Ok _ -> ()
  | Error e -> failwith ("experiments: declarations: " ^ e));
  m

let counting_reader _ctx inputs =
  Ok (Processing.value_output (Value.VInt (List.length inputs)))

let register_reader m ~name ~purpose ~touches =
  let spec =
    match
      (* counting is record-wise decomposable: shard counts sum *)
      Machine.make_processing m ~name ~purpose ~touches
        ~shard_reduce:Processing.reduce_int_sum counting_reader
    with
    | Ok s -> s
    | Error e -> failwith ("experiments: " ^ e)
  in
  match Machine.register_processing m spec with
  | Ok _ -> ()
  | Error e -> failwith ("experiments: register: " ^ e)

let collect_population m people =
  List.iter
    (fun (p : Population.person) ->
      match
        Machine.collect m ~type_name:Population.type_name
          ~subject:p.Population.subject_id ~interface:"web_form"
          ~record:(Population.record_of p)
          ~consents:p.Population.consent_profile ()
      with
      | Ok _ -> ()
      | Error e -> failwith ("experiments: collect: " ^ e))
    people

(* ------------------------------------------------------------------ *)
(* E1                                                                 *)

type e1_result = {
  e1_subjects : int;
  e1_stage_ns : (string * int) list;
  e1_total_ns : int;
  e1_device : (string * int) list;
}

let e1_ded_stages ?(subjects = 2_000) ?(vectored = true) ?(async = false)
    ?queue_depth ?cores () =
  let m = boot_sized ~vectored ~async ?queue_depth ~seed:101L ~n:subjects () in
  let prng = Prng.create ~seed:102L () in
  collect_population m (Population.generate prng ~n:subjects);
  register_reader m ~name:"e1_reader" ~purpose:"service"
    ~touches:[ (Population.type_name, [ "name"; "email"; "year_of_birth" ]) ];
  (* count only the hot path: reset device counters after population load
     so reads/merged_runs reflect the invoke alone *)
  Block_device.reset_stats (Machine.pd_device m);
  match
    Machine.invoke m ?cores ~name:"e1_reader"
      ~target:(Ded.All_of_type Population.type_name) ()
  with
  | Error e -> failwith ("e1: " ^ e)
  | Ok outcome ->
      (* settle any in-flight async charge so the A/B totals compare the
         same completed work (no-op on a synchronous device) *)
      Block_device.drain (Machine.pd_device m);
      {
        e1_subjects = subjects;
        e1_stage_ns = outcome.Ded.stage_ns;
        e1_total_ns = List.fold_left (fun acc (_, ns) -> acc + ns) 0 outcome.Ded.stage_ns;
        e1_device =
          Rgpdos_util.Stats.Counter.to_list
            (Block_device.stats (Machine.pd_device m));
      }

let render_e1 r =
  let rows =
    List.map
      (fun (stage, ns) ->
        [
          stage;
          fmt_f (float_of_int ns /. 1e6);
          fmt_f (100.0 *. float_of_int ns /. float_of_int (max 1 r.e1_total_ns));
        ])
      r.e1_stage_ns
    @ [ [ "total"; fmt_f (float_of_int r.e1_total_ns /. 1e6); "100.00" ] ]
  in
  Printf.sprintf
    "E1: DED pipeline breakdown (%d subjects, purpose 'service')\n%s"
    r.e1_subjects
    (Table.render
       ~align:[ Table.Left; Table.Right; Table.Right ]
       ~header:[ "stage"; "simulated ms"; "% of total" ]
       rows)

(* ------------------------------------------------------------------ *)
(* E2                                                                 *)

type e2_row = {
  e2_backend : string;
  e2_role : string;
  e2_ops : int;
  e2_errors : int;
  e2_unsupported : int;
  e2_sim_ms : float;
  e2_kops_per_sim_s : float;
}

let e2_gdprbench ?(subjects = 400) ?(ops_per_role = 200) () =
  let backends =
    [
      (fun pop -> Runner.machine_backend ~seed:7L ~population:pop);
      (fun pop -> Runner.baseline_backend ~seed:7L ~mode:Userdb.Gdpr ~population:pop);
      (fun pop -> Runner.baseline_backend ~seed:7L ~mode:Userdb.Vanilla ~population:pop);
    ]
  in
  List.concat_map
    (fun make_backend ->
      List.map
        (fun role ->
          (* fresh population, backend and op stream per cell so erases in
             one role do not pollute the next *)
          let prng = Prng.create ~seed:55L () in
          let pop = Population.generate prng ~n:subjects in
          let backend = make_backend pop in
          let ops = Gdprbench.generate prng ~role ~population:pop ~n:ops_per_role in
          let result = Runner.run backend ops in
          {
            e2_backend = result.Runner.backend;
            e2_role = Gdprbench.role_to_string role;
            e2_ops = result.Runner.total_ops;
            e2_errors = result.Runner.errors;
            e2_unsupported = result.Runner.unsupported;
            e2_sim_ms = float_of_int result.Runner.total_simulated_ns /. 1e6;
            e2_kops_per_sim_s = Runner.ops_per_simulated_second result /. 1e3;
          })
        Gdprbench.all_roles)
    backends

let render_e2 rows =
  "E2: GDPRBench-style roles, simulated time per backend\n"
  ^ Table.render
      ~align:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right ]
      ~header:
        [ "backend"; "role"; "ops"; "err"; "unsup"; "sim ms"; "kops/sim-s" ]
      (List.map
         (fun r ->
           [
             r.e2_backend; r.e2_role; string_of_int r.e2_ops;
             string_of_int r.e2_errors; string_of_int r.e2_unsupported;
             fmt_f r.e2_sim_ms; fmt_f r.e2_kops_per_sim_s;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E2b                                                                *)

type e2b_row = {
  e2b_backend : string;
  e2b_subjects : int;
  e2b_sim_ms : float;
}

let e2b_scaling ?(sizes = [ 100; 200; 400; 800 ]) ?(ops = 100) () =
  List.concat_map
    (fun n ->
      List.map
        (fun make_backend ->
          let prng = Prng.create ~seed:66L () in
          let pop = Population.generate prng ~n in
          let backend = make_backend pop in
          let op_stream =
            Gdprbench.generate prng ~role:Gdprbench.Processor ~population:pop
              ~n:ops
          in
          let result = Runner.run backend op_stream in
          {
            e2b_backend = result.Runner.backend;
            e2b_subjects = n;
            e2b_sim_ms = float_of_int result.Runner.total_simulated_ns /. 1e6;
          })
        [
          (fun pop -> Runner.machine_backend ~seed:8L ~population:pop);
          (fun pop ->
            Runner.baseline_backend ~seed:8L ~mode:Userdb.Gdpr ~population:pop);
          (fun pop ->
            Runner.baseline_backend ~seed:8L ~mode:Userdb.Vanilla ~population:pop);
        ])
    sizes

let render_e2b rows =
  "E2b: processor-role scaling with population size (fixed op stream)\n"
  ^ Table.render
      ~align:[ Table.Left; Table.Right; Table.Right ]
      ~header:[ "backend"; "subjects"; "sim ms" ]
      (List.map
         (fun r ->
           [ r.e2b_backend; string_of_int r.e2b_subjects; fmt_f r.e2b_sim_ms ])
         rows)

(* ------------------------------------------------------------------ *)
(* E3                                                                 *)

type e3_row = {
  e3_system : string;
  e3_deleted : int;
  e3_leaked_subjects : int;
  e3_sim_ms : float;
  e3_authority_recovers : bool;
}

let secret_of i = Printf.sprintf "E3SECRET-%06d-ZQX" i

let e3_baseline_system ~subjects ~victims ~secure ~scrub =
  let clock = Clock.create () in
  let config =
    {
      Block_device.default_config with
      Block_device.block_count = max 16_384 ((subjects * 6) + 4_096);
    }
  in
  let dev = Block_device.create ~config ~clock () in
  let fs = Journalfs.format dev ~journal_blocks:256 in
  let db = Result.get_ok (Userdb.create fs ~mode:Userdb.Gdpr) in
  Result.get_ok (Userdb.create_table db "person") |> ignore;
  for i = 0 to subjects - 1 do
    ignore
      (Result.get_ok
         (Userdb.insert db ~table:"person"
            {
              Userdb.subject = Printf.sprintf "sub-%06d" i;
              fields = [ ("name", secret_of i); ("email", "x@y") ];
              allowed_purposes = [ "service" ];
              expires_at = None;
            }))
  done;
  let t0 = Clock.now clock in
  List.iter
    (fun i ->
      ignore
        (Result.get_ok
           (Userdb.delete_subject ~secure db ~table:"person"
              (Printf.sprintf "sub-%06d" i))))
    victims;
  if scrub then begin
    Journalfs.checkpoint fs;
    Journalfs.scrub_journal fs
  end;
  let sim_ms = float_of_int (Clock.now clock - t0) /. 1e6 in
  let leaked =
    List.length
      (List.filter (fun i -> Block_device.scan dev (secret_of i) <> []) victims)
  in
  let name =
    match (secure, scrub) with
    | false, _ -> "db-gdpr (plain delete)"
    | true, false -> "db-gdpr (secure delete)"
    | true, true -> "db-gdpr (secure + journal scrub)"
  in
  {
    e3_system = name;
    e3_deleted = List.length victims;
    e3_leaked_subjects = leaked;
    e3_sim_ms = sim_ms;
    e3_authority_recovers = false;
  }

let e3_rgpdos_system ~subjects ~victims =
  let m = boot_sized ~seed:301L ~n:subjects () in
  let people =
    List.init subjects (fun i ->
        let p = { (List.hd (Population.generate (Prng.create ~seed:(Int64.of_int i) ()) ~n:1))
                  with Population.subject_id = Printf.sprintf "sub-%06d" i;
                       name = secret_of i } in
        p)
  in
  collect_population m people;
  let clock = Machine.clock m in
  let t0 = Clock.now clock in
  let erased = ref 0 in
  List.iter
    (fun i ->
      match Machine.right_to_erasure m ~subject:(Printf.sprintf "sub-%06d" i) with
      | Ok n -> erased := !erased + n
      | Error e -> failwith ("e3 rgpdos: " ^ e))
    victims;
  let sim_ms = float_of_int (Clock.now clock - t0) /. 1e6 in
  let leaked =
    List.length
      (List.filter
         (fun i -> Block_device.scan (Machine.pd_device m) (secret_of i) <> [])
         victims)
  in
  (* escrow check: the authority opens the first victim's envelope *)
  let authority_recovers =
    match victims with
    | [] -> false
    | i :: _ -> (
        let subject = Printf.sprintf "sub-%06d" i in
        match Dbfs.pds_of_subject (Machine.dbfs m) ~actor:"ded" subject with
        | Ok (pd :: _) -> (
            match Dbfs.erased_payload (Machine.dbfs m) ~actor:"ded" pd with
            | Ok sealed -> (
                match Authority.open_record (Machine.authority m) sealed with
                | Ok record ->
                    Record.get record "name" = Some (Value.VString (secret_of i))
                | Error _ -> false)
            | Error _ -> false)
        | _ -> false)
  in
  {
    e3_system = "rgpdOS (crypto-erasure)";
    e3_deleted = !erased;
    e3_leaked_subjects = leaked;
    e3_sim_ms = sim_ms;
    e3_authority_recovers = authority_recovers;
  }

let e3_erasure ?(subjects = 300) ?(erase_fraction = 0.10) () =
  let n_victims = max 1 (int_of_float (float_of_int subjects *. erase_fraction)) in
  let victims = List.init n_victims (fun k -> k * subjects / n_victims) in
  [
    e3_baseline_system ~subjects ~victims ~secure:false ~scrub:false;
    e3_baseline_system ~subjects ~victims ~secure:true ~scrub:false;
    e3_baseline_system ~subjects ~victims ~secure:true ~scrub:true;
    e3_rgpdos_system ~subjects ~victims;
  ]

let render_e3 rows =
  "E3: right to be forgotten — forensic scan after deletion\n"
  ^ Table.render
      ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left ]
      ~header:
        [ "system"; "deleted"; "subjects leaked"; "sim ms"; "authority escrow" ]
      (List.map
         (fun r ->
           [
             r.e3_system; string_of_int r.e3_deleted;
             string_of_int r.e3_leaked_subjects; fmt_f r.e3_sim_ms;
             (if r.e3_authority_recovers then "recovers plaintext" else "n/a");
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E4                                                                 *)

type e4_row = {
  e4_records_per_subject : int;
  e4_sim_us : float;
  e4_export_complete : bool;
}

let count_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i acc =
    if i + nl > hl then acc
    else if String.sub hay i nl = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  if nl = 0 then 0 else go 0 0

let e4_access ?(records_per_subject = [ 1; 10; 50; 200; 1_000 ]) () =
  List.map
    (fun rps ->
      let m = boot_sized ~seed:401L ~n:(rps + 64) () in
      let prng = Prng.create ~seed:402L () in
      let base = List.hd (Population.generate prng ~n:1) in
      for k = 0 to rps - 1 do
        ignore k;
        match
          Machine.collect m ~type_name:Population.type_name ~subject:"sub-alice"
            ~interface:"web_form"
            ~record:(Population.record_of base)
            ~consents:base.Population.consent_profile ()
        with
        | Ok _ -> ()
        | Error e -> failwith ("e4: " ^ e)
      done;
      let clock = Machine.clock m in
      let t0 = Clock.now clock in
      let response =
        match Machine.right_of_access m ~subject:"sub-alice" with
        | Ok r -> r
        | Error e -> failwith ("e4: " ^ e)
      in
      {
        e4_records_per_subject = rps;
        e4_sim_us = float_of_int (Clock.now clock - t0) /. 1e3;
        e4_export_complete = count_sub response "\"id\":" = rps;
      })
    records_per_subject

let render_e4 rows =
  "E4: right of access — structured export latency vs PD volume\n"
  ^ Table.render
      ~align:[ Table.Right; Table.Right; Table.Left ]
      ~header:[ "records/subject"; "sim us"; "complete" ]
      (List.map
         (fun r ->
           [
             string_of_int r.e4_records_per_subject; fmt_f r.e4_sim_us;
             string_of_bool r.e4_export_complete;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E5                                                                 *)

type e5_row = {
  e5_records : int;
  e5_expired : int;
  e5_removed : int;
  e5_sim_ms : float;
}

let e5_ttl ?(sizes = [ 500; 1_000; 2_000; 4_000 ]) ?(expired_fraction = 0.3) () =
  List.map
    (fun n ->
      let m = boot_sized ~seed:501L ~n:(n * 2) () in
      let prng = Prng.create ~seed:502L () in
      let n_old = int_of_float (float_of_int n *. expired_fraction) in
      let old_people = Population.generate prng ~n:n_old in
      collect_population m old_people;
      (* person TTL is 2Y: jump past it, then add fresh PD *)
      Clock.advance (Machine.clock m) ((2 * Clock.year) + Clock.day);
      let fresh_people =
        List.map
          (fun (p : Population.person) ->
            { p with Population.subject_id = "fresh-" ^ p.Population.subject_id })
          (Population.generate prng ~n:(n - n_old))
      in
      collect_population m fresh_people;
      let clock = Machine.clock m in
      let t0 = Clock.now clock in
      let report = Machine.sweep_ttl m () in
      {
        e5_records = n;
        e5_expired = report.Ttl_sweeper.expired;
        e5_removed = report.Ttl_sweeper.removed;
        e5_sim_ms = float_of_int (Clock.now clock - t0) /. 1e6;
      })
    sizes

let render_e5 rows =
  "E5: storage-limitation (TTL) sweep cost vs DBFS size\n"
  ^ Table.render
      ~align:[ Table.Right; Table.Right; Table.Right; Table.Right ]
      ~header:[ "records"; "expired"; "removed"; "sim ms" ]
      (List.map
         (fun r ->
           [
             string_of_int r.e5_records; string_of_int r.e5_expired;
             string_of_int r.e5_removed; fmt_f r.e5_sim_ms;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E6                                                                 *)

type e6_row = {
  e6_grant_rate : float;
  e6_consumed : int;
  e6_filtered : int;
  e6_sim_us : float;
}

let e6_filter ?(subjects = 1_000) ?(rates = [ 0.0; 0.25; 0.5; 0.75; 1.0 ]) () =
  List.map
    (fun rate ->
      let m = boot_sized ~seed:601L ~n:subjects () in
      let prng = Prng.create ~seed:602L () in
      let people = Population.generate prng ~n:subjects in
      List.iter
        (fun (p : Population.person) ->
          let analytics =
            if Prng.bernoulli prng rate then Membrane.View "v_ano"
            else Membrane.Denied
          in
          match
            Machine.collect m ~type_name:Population.type_name
              ~subject:p.Population.subject_id ~interface:"web_form"
              ~record:(Population.record_of p)
              ~consents:[ ("service", Membrane.All); ("analytics", analytics) ]
              ()
          with
          | Ok _ -> ()
          | Error e -> failwith ("e6: " ^ e))
        people;
      register_reader m ~name:"e6_reader" ~purpose:"analytics"
        ~touches:[ (Population.type_name, [ "year_of_birth" ]) ];
      let clock = Machine.clock m in
      let t0 = Clock.now clock in
      match
        Machine.invoke m ~name:"e6_reader"
          ~target:(Ded.All_of_type Population.type_name) ()
      with
      | Error e -> failwith ("e6: " ^ e)
      | Ok outcome ->
          {
            e6_grant_rate = rate;
            e6_consumed = outcome.Ded.consumed;
            e6_filtered = outcome.Ded.filtered;
            e6_sim_us = float_of_int (Clock.now clock - t0) /. 1e3;
          })
    rates

let render_e6 rows =
  "E6: membrane filter — consent selectivity sweep (purpose 'analytics')\n"
  ^ Table.render
      ~align:[ Table.Right; Table.Right; Table.Right; Table.Right ]
      ~header:[ "grant rate"; "consumed"; "filtered"; "sim us" ]
      (List.map
         (fun r ->
           [
             fmt_f r.e6_grant_rate; string_of_int r.e6_consumed;
             string_of_int r.e6_filtered; fmt_f r.e6_sim_us;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E7                                                                 *)

type e7_result = {
  e7_baseline_dangling_reads : int;
  e7_baseline_leaks : int;
  e7_rgpdos_attacks : int;
  e7_rgpdos_leaks : int;
  e7_rgpdos_blocked : int;
}

let e7_leak ?(attacks = 200) () =
  (* baseline: use-after-free across purposes in one address space *)
  let heap = Process_model.create ~slots:8 in
  let dangling = ref 0 in
  for i = 0 to attacks - 1 do
    let p1 = Process_model.alloc heap ~owner:"purpose1" ~data:(Printf.sprintf "pd1-%d" i) in
    Process_model.free heap p1;
    let p2 = Process_model.alloc heap ~owner:"purpose2" ~data:(Printf.sprintf "pd2-%d" i) in
    ignore (Process_model.read heap p1);
    incr dangling;
    Process_model.free heap p2
  done;
  let baseline_leaks = Process_model.cross_owner_reads heap in
  (* rgpdOS: the same intent, attempted through the only available door *)
  let m = boot_sized ~seed:701L ~n:64 () in
  let prng = Prng.create ~seed:702L () in
  collect_population m (Population.generate prng ~n:16);
  let exfil_impl (ctx : Processing.context) _inputs =
    match ctx.Processing.syscall Syscall.Sys_net_send with
    | Ok () -> Ok (Processing.value_output (Value.VString "exfiltrated"))
    | Error _ -> Ok Processing.no_output
  in
  let leak_return_impl _ctx inputs =
    match inputs with
    | (i : Processing.pd_input) :: _ -> (
        match Record.get i.Processing.record "name" with
        | Some v -> Ok (Processing.value_output v)
        | None -> Ok Processing.no_output)
    | [] -> Ok Processing.no_output
  in
  let register name impl =
    let spec =
      match
        Machine.make_processing m ~name ~purpose:"service"
          ~touches:[ (Population.type_name, [ "name" ]) ]
          impl
      with
      | Ok s -> s
      | Error e -> failwith ("e7: " ^ e)
    in
    ignore (Result.get_ok (Machine.register_processing m spec))
  in
  register "e7_exfil" exfil_impl;
  register "e7_leak_return" leak_return_impl;
  let rgpd_attacks = ref 0 and rgpd_leaks = ref 0 and blocked = ref 0 in
  for i = 0 to attacks - 1 do
    let name = if i mod 2 = 0 then "e7_exfil" else "e7_leak_return" in
    incr rgpd_attacks;
    match
      Machine.invoke m ~name ~target:(Ded.All_of_type Population.type_name) ()
    with
    | Ok outcome ->
        (* the attack "succeeded" only if PD actually escaped *)
        (match outcome.Ded.value with
        | Some (Value.VString _) -> incr rgpd_leaks
        | _ -> ())
    | Error _ -> incr blocked
  done;
  {
    e7_baseline_dangling_reads = !dangling;
    e7_baseline_leaks = baseline_leaks;
    e7_rgpdos_attacks = !rgpd_attacks;
    e7_rgpdos_leaks = !rgpd_leaks;
    e7_rgpdos_blocked = !blocked;
  }

let render_e7 r =
  "E7: cross-purpose PD leak attempts\n"
  ^ Table.render
      ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ~header:[ "system"; "attempts"; "leaks"; "blocked" ]
      [
        [
          "process-centric baseline (UAF)";
          string_of_int r.e7_baseline_dangling_reads;
          string_of_int r.e7_baseline_leaks;
          "0";
        ];
        [
          "rgpdOS (data-centric DED)";
          string_of_int r.e7_rgpdos_attacks;
          string_of_int r.e7_rgpdos_leaks;
          string_of_int r.e7_rgpdos_blocked;
        ];
      ]

(* ------------------------------------------------------------------ *)
(* E8                                                                 *)

type e8_result = {
  e8_submitted : int;
  e8_accepted : int;
  e8_rejected_no_purpose : int;
  e8_alerted : int;
  e8_misclassified : int;
}

let e8_register () =
  let m = boot_sized ~seed:801L ~n:64 () in
  let noop _ _ = Ok Processing.no_output in
  let mk name purpose touches =
    match Machine.make_processing m ~name ~purpose ~touches noop with
    | Ok s -> s
    | Error e -> failwith ("e8: " ^ e)
  in
  (* (spec, ground truth) *)
  let corpus =
    [
      (mk "e8_ok_whole" "service" [ (Population.type_name, [ "name"; "email" ]) ], `Accept);
      (mk "e8_ok_view" "analytics" [ (Population.type_name, [ "year_of_birth" ]) ], `Accept);
      (mk "e8_ok_empty" "marketing" [], `Accept);
      (Processing.make ~name:"e8_no_purpose" noop, `Reject);
      (mk "e8_overreach" "analytics" [ (Population.type_name, [ "email" ]) ], `Alert);
      (mk "e8_wrong_type" "analytics" [ ("invoice", [ "total" ]) ], `Alert);
    ]
  in
  let accepted = ref 0 and rejected = ref 0 and alerted = ref 0 and wrong = ref 0 in
  List.iter
    (fun (spec, truth) ->
      let verdict =
        match Machine.register_processing m spec with
        | Ok Ps.Registered ->
            incr accepted;
            `Accept
        | Ok (Ps.Registered_with_alert _) ->
            incr alerted;
            `Alert
        | Error _ ->
            incr rejected;
            `Reject
      in
      if verdict <> truth then incr wrong)
    corpus;
  {
    e8_submitted = List.length corpus;
    e8_accepted = !accepted;
    e8_rejected_no_purpose = !rejected;
    e8_alerted = !alerted;
    e8_misclassified = !wrong;
  }

let render_e8 r =
  Printf.sprintf
    "E8: ps_register verdicts on a labelled corpus\n%s"
    (Table.render
       ~align:[ Table.Left; Table.Right ]
       ~header:[ "outcome"; "count" ]
       [
         [ "submitted"; string_of_int r.e8_submitted ];
         [ "accepted"; string_of_int r.e8_accepted ];
         [ "rejected (no purpose)"; string_of_int r.e8_rejected_no_purpose ];
         [ "alerted (purpose mismatch)"; string_of_int r.e8_alerted ];
         [ "misclassified vs ground truth"; string_of_int r.e8_misclassified ];
       ])

(* ------------------------------------------------------------------ *)
(* E9                                                                 *)

type e9_row = {
  e9_config : string;
  e9_pd_jobs : int;
  e9_npd_jobs : int;
  e9_makespan_ms : float;
  e9_general_busy_ms : float;
  e9_rgpd_busy_ms : float;
  e9_pd_on_general : bool;
}

let e9_one_config ?(cores = 1) ~rgpd_mcpu ~general_mcpu ~jobs () =
  let clock = Clock.create () in
  let resources = Resource.create ~cpu_millis:8_000 ~mem_pages:100_000 in
  let claim owner cpu =
    Result.get_ok (Resource.claim resources ~owner ~cpu_millis:cpu ~mem_pages:1_000)
  in
  let general =
    Subkernel.make ~id:"general" ~kind:Subkernel.General_purpose
      ~partition:(claim "general" general_mcpu) ~policy:Syscall.Policy.allow_all
      ~cores ()
  in
  let rgpd =
    Subkernel.make ~id:"rgpdos" ~kind:Subkernel.Rgpd
      ~partition:(claim "rgpdos" rgpd_mcpu) ~policy:Syscall.Policy.builtin_policy
      ~cores ()
  in
  let io =
    Subkernel.make ~id:"io-pd" ~kind:(Subkernel.Io_driver "nvme0")
      ~partition:(claim "io-pd" 500) ~policy:Syscall.Policy.allow_all ()
  in
  let sched = Scheduler.create ~clock ~kernels:[ general; rgpd; io ] in
  let pd_jobs = jobs / 2 and npd_jobs = jobs - (jobs / 2) in
  (* the separation probe: a PD job must be unplaceable without a PD kernel *)
  let pd_on_general =
    let lone = Scheduler.create ~clock ~kernels:[ general ] in
    Result.is_ok
      (Scheduler.submit lone
         { Scheduler.job_id = "probe"; data_class = Scheduler.Pd; work = 1 })
  in
  for i = 0 to pd_jobs - 1 do
    ignore
      (Scheduler.submit sched
         {
           Scheduler.job_id = Printf.sprintf "pd%d" i;
           data_class = Scheduler.Pd;
           work = 2_000_000;
         })
  done;
  for i = 0 to npd_jobs - 1 do
    ignore
      (Scheduler.submit sched
         {
           Scheduler.job_id = Printf.sprintf "npd%d" i;
           data_class = Scheduler.Npd;
           work = 2_000_000;
         })
  done;
  let t0 = Clock.now clock in
  Scheduler.run_until_idle sched ();
  let busy = Scheduler.kernel_busy_time sched in
  {
    e9_config =
      Printf.sprintf "rgpd=%dmcpu general=%dmcpu cores=%d" rgpd_mcpu
        general_mcpu cores;
    e9_pd_jobs = pd_jobs;
    e9_npd_jobs = npd_jobs;
    e9_makespan_ms = float_of_int (Clock.now clock - t0) /. 1e6;
    e9_general_busy_ms = float_of_int (List.assoc "general" busy) /. 1e6;
    e9_rgpd_busy_ms = float_of_int (List.assoc "rgpdos" busy) /. 1e6;
    e9_pd_on_general = pd_on_general;
  }

let e9_kernels ?(jobs = 100) () =
  [
    e9_one_config ~rgpd_mcpu:1_500 ~general_mcpu:6_000 ~jobs ();
    e9_one_config ~rgpd_mcpu:3_750 ~general_mcpu:3_750 ~jobs ();
    e9_one_config ~rgpd_mcpu:6_000 ~general_mcpu:1_500 ~jobs ();
    (* the same balanced split under multicore: busy time is invariant,
       the makespan shrinks by the critical-path ratio *)
    e9_one_config ~cores:2 ~rgpd_mcpu:3_750 ~general_mcpu:3_750 ~jobs ();
    e9_one_config ~cores:4 ~rgpd_mcpu:3_750 ~general_mcpu:3_750 ~jobs ();
  ]

let render_e9 rows =
  "E9: purpose-kernel partitioning — PD/NPD job stream, dynamic CPU split\n"
  ^ Table.render
      ~align:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Left ]
      ~header:
        [ "config"; "PD jobs"; "NPD jobs"; "makespan ms"; "general busy ms";
          "rgpd busy ms"; "PD placeable on general?" ]
      (List.map
         (fun r ->
           [
             r.e9_config; string_of_int r.e9_pd_jobs; string_of_int r.e9_npd_jobs;
             fmt_f r.e9_makespan_ms; fmt_f r.e9_general_busy_ms;
             fmt_f r.e9_rgpd_busy_ms;
             (if r.e9_pd_on_general then "YES (violation!)" else "no");
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E11                                                                *)

type e11_result = {
  e11_subjects : int;
  e11_copies : int;
  e11_flips : int;
  e11_membranes_updated : int;
  e11_sim_ms : float;
  e11_inconsistent_copies : int;
}

let e11_consent_churn ?(subjects = 300) ?(copy_fraction = 0.2) ?(flips = 200) () =
  let m = boot_sized ~seed:1101L ~n:(subjects * 2) () in
  let prng = Prng.create ~seed:1102L () in
  let people = Population.generate prng ~n:subjects in
  collect_population m people;
  let dbfs = Machine.dbfs m in
  (* duplicate a fraction of the PD (the copy built-in keeps lineage) *)
  let n_copies = int_of_float (float_of_int subjects *. copy_fraction) in
  let all_pds =
    match Dbfs.list_pds dbfs ~actor:"ded" Population.type_name with
    | Ok ids -> Array.of_list ids
    | Error e -> failwith (Dbfs.error_to_string e)
  in
  for i = 0 to n_copies - 1 do
    match Dbfs.copy_pd dbfs ~actor:"ded" all_pds.(i) with
    | Ok _ -> ()
    | Error e -> failwith ("e11 copy: " ^ Dbfs.error_to_string e)
  done;
  (* churn: random subjects flip analytics consent back and forth *)
  let pop = Array.of_list people in
  let zipf = Prng.Zipf.create ~n:subjects ~theta:0.99 in
  let clock = Machine.clock m in
  let t0 = Clock.now clock in
  let updated = ref 0 in
  for _ = 1 to flips do
    let subject = pop.(Prng.Zipf.sample zipf prng).Population.subject_id in
    let scope =
      if Prng.bool prng then Membrane.View "v_ano" else Membrane.Denied
    in
    match Machine.set_consent m ~subject ~purpose:"analytics" scope with
    | Ok n -> updated := !updated + n
    | Error e -> failwith ("e11 flip: " ^ e)
  done;
  let sim_ms = float_of_int (Clock.now clock - t0) /. 1e6 in
  (* verify: every entry must agree with its lineage root on 'analytics' *)
  let consent_of pd_id =
    match Dbfs.get_membrane dbfs ~actor:"ded" pd_id with
    | Ok mem ->
        (Membrane.lineage_root mem,
         List.assoc_opt "analytics" mem.Membrane.consents)
    | Error e -> failwith (Dbfs.error_to_string e)
  in
  let roots = Hashtbl.create 64 in
  let ids =
    match Dbfs.list_pds dbfs ~actor:"ded" Population.type_name with
    | Ok ids -> ids
    | Error e -> failwith (Dbfs.error_to_string e)
  in
  List.iter
    (fun pd_id ->
      let root, consent = consent_of pd_id in
      if not (Hashtbl.mem roots root) then Hashtbl.replace roots root consent)
    ids;
  let inconsistent =
    List.length
      (List.filter
         (fun pd_id ->
           let root, consent = consent_of pd_id in
           Hashtbl.find roots root <> consent)
         ids)
  in
  {
    e11_subjects = subjects;
    e11_copies = n_copies;
    e11_flips = flips;
    e11_membranes_updated = !updated;
    e11_sim_ms = sim_ms;
    e11_inconsistent_copies = inconsistent;
  }

let render_e11 r =
  Printf.sprintf
    "E11: consent churn with live copies (lineage propagation)\n%s"
    (Table.render
       ~align:[ Table.Left; Table.Right ]
       ~header:[ "metric"; "value" ]
       [
         [ "subjects"; string_of_int r.e11_subjects ];
         [ "copies"; string_of_int r.e11_copies ];
         [ "consent flips"; string_of_int r.e11_flips ];
         [ "membranes updated"; string_of_int r.e11_membranes_updated ];
         [ "simulated ms"; fmt_f r.e11_sim_ms ];
         [ "inconsistent copies after churn"; string_of_int r.e11_inconsistent_copies ];
       ])

(* ------------------------------------------------------------------ *)
(* A1                                                                 *)

type a1_row = {
  a1_mode : string;
  a1_grant_rate : float;
  a1_sim_us : float;
  a1_overread : int;
}

let a1_fetch_mode ?(subjects = 500) ?(rates = [ 0.1; 0.5; 0.9 ]) () =
  List.concat_map
    (fun rate ->
      List.map
        (fun (mode, mode_name) ->
          let m = boot_sized ~seed:901L ~n:subjects () in
          let prng = Prng.create ~seed:902L () in
          let people = Population.generate prng ~n:subjects in
          List.iter
            (fun (p : Population.person) ->
              let analytics =
                if Prng.bernoulli prng rate then Membrane.View "v_ano"
                else Membrane.Denied
              in
              match
                Machine.collect m ~type_name:Population.type_name
                  ~subject:p.Population.subject_id ~interface:"web_form"
                  ~record:(Population.record_of p)
                  ~consents:
                    [ ("service", Membrane.All); ("analytics", analytics) ]
                  ()
              with
              | Ok _ -> ()
              | Error e -> failwith ("a1: " ^ e))
            people;
          register_reader m ~name:"a1_reader" ~purpose:"analytics"
            ~touches:[ (Population.type_name, [ "year_of_birth" ]) ];
          let clock = Machine.clock m in
          let t0 = Clock.now clock in
          match
            Machine.invoke m ~fetch_mode:mode ~name:"a1_reader"
              ~target:(Ded.All_of_type Population.type_name) ()
          with
          | Error e -> failwith ("a1: " ^ e)
          | Ok outcome ->
              {
                a1_mode = mode_name;
                a1_grant_rate = rate;
                a1_sim_us = float_of_int (Clock.now clock - t0) /. 1e3;
                a1_overread = outcome.Ded.overread;
              })
        [ (Ded.Two_phase, "two-phase"); (Ded.Single_phase, "single-phase") ])
    rates

let render_a1 rows =
  "A1: ablation — two-phase membrane filtering vs single-phase fetching\n"
  ^ Table.render
      ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ~header:[ "mode"; "grant rate"; "sim us"; "PD overread" ]
      (List.map
         (fun r ->
           [
             r.a1_mode; fmt_f r.a1_grant_rate; fmt_f r.a1_sim_us;
             string_of_int r.a1_overread;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* A2                                                                 *)

type a2_row = {
  a2_location : string;
  a2_cpu_cost_us : float;
  a2_sim_ms : float;
}

let a2_placement ?(subjects = 1_000) ?(cpu_costs_ns = [ 1_000; 10_000; 50_000 ]) () =
  List.concat_map
    (fun cpu_cost ->
      List.map
        (fun (location, location_name) ->
          let m = boot_sized ~seed:951L ~n:subjects () in
          let prng = Prng.create ~seed:952L () in
          collect_population m (Population.generate prng ~n:subjects);
          let spec =
            match
              Machine.make_processing m ~name:"a2_reader" ~purpose:"service"
                ~touches:[ (Population.type_name, [ "name" ]) ]
                ~cpu_cost_per_record:cpu_cost
                ~shard_reduce:Processing.reduce_int_sum counting_reader
            with
            | Ok s -> s
            | Error e -> failwith ("a2: " ^ e)
          in
          ignore (Result.get_ok (Machine.register_processing m spec));
          let clock = Machine.clock m in
          let t0 = Clock.now clock in
          (match
             Machine.invoke m ~location ~name:"a2_reader"
               ~target:(Ded.All_of_type Population.type_name) ()
           with
          | Ok _ -> ()
          | Error e -> failwith ("a2: " ^ e));
          {
            a2_location = location_name;
            a2_cpu_cost_us = float_of_int cpu_cost /. 1e3;
            a2_sim_ms = float_of_int (Clock.now clock - t0) /. 1e6;
          })
        [ (Ded.Host, "host"); (Ded.Pim, "pim"); (Ded.Pis, "pis") ])
    cpu_costs_ns

let render_a2 rows =
  "A2: ablation — DED placement (host vs processing-in-memory/-storage)\n"
  ^ Table.render
      ~align:[ Table.Left; Table.Right; Table.Right ]
      ~header:[ "location"; "compute us/record"; "sim ms" ]
      (List.map
         (fun r ->
           [ r.a2_location; fmt_f r.a2_cpu_cost_us; fmt_f r.a2_sim_ms ])
         rows)

(* ------------------------------------------------------------------ *)
(* E10                                                                *)

type e10_row = {
  e10_entries : int;
  e10_verify_wall_ms : float;
  e10_tamper_detected : bool;
}

let e10_audit ?(sizes = [ 100; 1_000; 10_000; 50_000 ]) () =
  List.map
    (fun n ->
      let log = Audit_log.create () in
      for i = 0 to n - 1 do
        ignore
          (Audit_log.append log ~now:i ~actor:"ded"
             (Audit_log.Processed
                {
                  purpose = "service";
                  inputs = [ Printf.sprintf "pd-%d" i ];
                  produced = [];
                }))
      done;
      let t0 = Sys.time () in
      let ok = Audit_log.verify log = Ok () in
      let wall_ms = (Sys.time () -. t0) *. 1e3 in
      if not ok then failwith "e10: clean chain failed to verify";
      Audit_log.unsafe_tamper log ~seq:(n / 2) ~actor:"attacker";
      let tampered = Audit_log.verify log = Error (n / 2) in
      { e10_entries = n; e10_verify_wall_ms = wall_ms; e10_tamper_detected = tampered })
    sizes

let render_e10 rows =
  "E10: audit-chain verification cost and tamper detection\n"
  ^ Table.render
      ~align:[ Table.Right; Table.Right; Table.Left ]
      ~header:[ "entries"; "verify wall ms"; "tamper detected" ]
      (List.map
         (fun r ->
           [
             string_of_int r.e10_entries; fmt_f r.e10_verify_wall_ms;
             string_of_bool r.e10_tamper_detected;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E-index: secondary-index pushdown vs full-type scans               *)

type eidx_select_row = {
  eidx_population : int;
  eidx_probe : string;             (** rendered predicate *)
  eidx_selectivity_pct : float;    (** designed match fraction, percent *)
  eidx_matches : int;
  eidx_scan_ns : int;              (** [~use_indexes:false] *)
  eidx_index_ns : int;             (** [~use_indexes:true] *)
  eidx_speedup : float;
}

type eidx_ttl_row = {
  eidx_ttl_population : int;
  eidx_ttl_expired : int;
  eidx_ttl_full_ns : int;          (** legacy full membrane scan *)
  eidx_ttl_incr_ns : int;          (** expiry-queue incremental sweep *)
  eidx_ttl_speedup : float;
}

type eidx_result = {
  eidx_select : eidx_select_row list;
  eidx_ttl : eidx_ttl_row list;
}

(* A type built for exact selectivities: record i carries i mod 1000,
   i mod 100 and i mod 10 in three indexed int fields, so an Eq probe on
   one of them matches 0.1% / 1% / 10% of any population that is a
   multiple of 1000.  The unindexed payload string keeps the full-scan
   cost honest (records occupy real blocks). *)
let eidx_schema () =
  match
    Schema.make ~name:"sample"
      ~fields:
        [
          { Schema.fname = "permille"; ftype = Value.TInt; required = true };
          { Schema.fname = "centile"; ftype = Value.TInt; required = true };
          { Schema.fname = "decile"; ftype = Value.TInt; required = true };
          { Schema.fname = "payload"; ftype = Value.TString; required = true };
        ]
      ~default_consents:[ ("service", Membrane.All) ]
      ~collection:[ ("web_form", "sample_form.html") ]
      ~indexed_fields:[ "permille"; "centile"; "decile" ] ()
  with
  | Ok s -> s
  | Error e -> failwith ("e_index: schema: " ^ e)

let eidx_boot ~n =
  let clock = Clock.create () in
  let config =
    {
      Block_device.default_config with
      Block_device.block_count = max 16_384 ((n * 8) + 4_096);
    }
  in
  let dev = Block_device.create ~config ~clock () in
  let t = Dbfs.format dev ~journal_blocks:256 in
  let schema = eidx_schema () in
  (match Dbfs.create_type t ~actor:"ded" schema with
  | Ok () -> ()
  | Error e -> failwith ("e_index: " ^ Dbfs.error_to_string e));
  for i = 0 to n - 1 do
    let subject = Printf.sprintf "sub-%06d" i in
    let record =
      [
        ("permille", Value.VInt (i mod 1000));
        ("centile", Value.VInt (i mod 100));
        ("decile", Value.VInt (i mod 10));
        ("payload", Value.VString (Printf.sprintf "row %06d padding text" i));
      ]
    in
    match
      Dbfs.insert t ~actor:"ded" ~subject ~type_name:"sample" ~record
        ~membrane_of:(fun ~pd_id ->
          Membrane.make ~pd_id ~type_name:"sample" ~subject_id:subject
            ~origin:schema.Schema.default_origin
            ~consents:schema.Schema.default_consents
            ~created_at:(Clock.now clock)
            ~sensitivity:schema.Schema.default_sensitivity
            ~collection:schema.Schema.collection ())
    with
    | Ok _ -> ()
    | Error e -> failwith ("e_index: insert: " ^ Dbfs.error_to_string e)
  done;
  (t, clock)

let eidx_probes =
  [
    (0.1, Query.Eq ("permille", Value.VInt 7));
    (1.0, Query.Eq ("centile", Value.VInt 7));
    (10.0, Query.Eq ("decile", Value.VInt 7));
    (100.0, Query.True);
  ]

let e_index_select ?(sizes = [ 500; 2_000; 8_000 ]) () =
  List.concat_map
    (fun n ->
      let t, clock = eidx_boot ~n in
      List.map
        (fun (sel_pct, pred) ->
          let run ~use_indexes =
            let t0 = Clock.now clock in
            match Dbfs.select t ~actor:"ded" ~use_indexes "sample" pred with
            | Ok ids -> (ids, Clock.now clock - t0)
            | Error e -> failwith ("e_index: " ^ Dbfs.error_to_string e)
          in
          let scan_ids, scan_ns = run ~use_indexes:false in
          let index_ids, index_ns = run ~use_indexes:true in
          if scan_ids <> index_ids then
            failwith
              ("e_index: pushdown result mismatch on " ^ Query.to_string pred);
          {
            eidx_population = n;
            eidx_probe = Query.to_string pred;
            eidx_selectivity_pct = sel_pct;
            eidx_matches = List.length index_ids;
            eidx_scan_ns = scan_ns;
            eidx_index_ns = index_ns;
            eidx_speedup =
              (* a trivial probe (True) is free on both paths *)
              (if scan_ns = 0 && index_ns = 0 then 1.0
               else float_of_int scan_ns /. float_of_int (max 1 index_ns));
          })
        eidx_probes)
    sizes

(* Same aged-population shape as E5, but the sweep is timed twice from
   identical boots: once forced through the legacy full membrane scan,
   once through the TTL expiry queue.  The expired cohort is held at a
   fixed [expired] count while the population grows, so the queue path's
   O(expired) cost stays flat and the measured speedup widens with
   O(population) — the scaling claim itself. *)
let e_index_ttl ?(sizes = [ 500; 2_000; 4_000 ]) ?(expired = 25) () =
  let boot_aged ~n =
    let m = boot_sized ~seed:1201L ~n:(n * 2) () in
    let prng = Prng.create ~seed:1202L () in
    let n_old = max 1 (min expired n) in
    let old_people = Population.generate prng ~n:n_old in
    collect_population m old_people;
    Clock.advance (Machine.clock m) ((2 * Clock.year) + Clock.day);
    let fresh_people =
      List.map
        (fun (p : Population.person) ->
          { p with Population.subject_id = "fresh-" ^ p.Population.subject_id })
        (Population.generate prng ~n:(n - n_old))
    in
    collect_population m fresh_people;
    m
  in
  List.map
    (fun n ->
      let time_sweep ~incremental =
        let m = boot_aged ~n in
        let clock = Machine.clock m in
        let t0 = Clock.now clock in
        let report = Machine.sweep_ttl m ~incremental () in
        (report, Clock.now clock - t0)
      in
      let full_report, full_ns = time_sweep ~incremental:false in
      let incr_report, incr_ns = time_sweep ~incremental:true in
      if full_report.Ttl_sweeper.removed <> incr_report.Ttl_sweeper.removed
      then failwith "e_index: incremental sweep removed a different set";
      {
        eidx_ttl_population = n;
        eidx_ttl_expired = incr_report.Ttl_sweeper.expired;
        eidx_ttl_full_ns = full_ns;
        eidx_ttl_incr_ns = incr_ns;
        eidx_ttl_speedup = float_of_int full_ns /. float_of_int (max 1 incr_ns);
      })
    sizes

let e_index ?sizes ?ttl_sizes () =
  {
    eidx_select = e_index_select ?sizes ();
    eidx_ttl = e_index_ttl ?sizes:ttl_sizes ();
  }

let render_e_index r =
  "E-index: predicate pushdown vs full-type scan (Dbfs.select)\n"
  ^ Table.render
      ~align:
        [
          Table.Right; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right;
        ]
      ~header:
        [
          "population"; "probe"; "sel %"; "matches"; "scan sim us";
          "index sim us"; "speedup";
        ]
      (List.map
         (fun row ->
           [
             string_of_int row.eidx_population; row.eidx_probe;
             fmt_f row.eidx_selectivity_pct; string_of_int row.eidx_matches;
             fmt_f (float_of_int row.eidx_scan_ns /. 1e3);
             fmt_f (float_of_int row.eidx_index_ns /. 1e3);
             fmt_f row.eidx_speedup ^ "x";
           ])
         r.eidx_select)
  ^ "\nE-index: TTL sweep, full membrane scan vs expiry queue\n"
  ^ Table.render
      ~align:
        [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~header:
        [ "population"; "expired"; "full sim us"; "incr sim us"; "speedup" ]
      (List.map
         (fun row ->
           [
             string_of_int row.eidx_ttl_population;
             string_of_int row.eidx_ttl_expired;
             fmt_f (float_of_int row.eidx_ttl_full_ns /. 1e3);
             fmt_f (float_of_int row.eidx_ttl_incr_ns /. 1e3);
             fmt_f row.eidx_ttl_speedup ^ "x";
           ])
         r.eidx_ttl)
