module Prng = Rgpdos_util.Prng
module Pool = Rgpdos_util.Pool
module Fnv = Rgpdos_util.Fnv
module Sha256 = Rgpdos_crypto.Sha256
module Audit_log = Rgpdos_audit.Audit_log
module Machine = Rgpdos.Machine

type shard_outcome = {
  shard : int;
  subjects : int;
  ops : int;
  errors : int;
  unsupported : int;
  sim_ns : int;
  audit_entries : int;
  audit_ok : bool;
  audit_head : string;
}

type report = {
  role : string;
  shards : int;
  subjects : int;
  total_ops : int;
  errors : int;
  unsupported : int;
  sim_critical_ns : int;
  sim_total_ns : int;
  kops_per_sim_s : float;
  wall_seconds : float;
  cross_link : string;
  audit_ok : bool;
  per_shard : shard_outcome list;
}

let spawn_overhead_ns = Rgpdos_ded.Ded.cost_spawn_per_shard

let partition ~shards population =
  if shards < 1 then invalid_arg "Shard_bench.partition: shards must be >= 1";
  let buckets = Array.make shards [] in
  List.iter
    (fun (p : Population.person) ->
      let i = Fnv.hash64 p.Population.subject_id mod shards in
      buckets.(i) <- p :: buckets.(i))
    population;
  Array.map List.rev buckets

let empty_outcome shard =
  {
    shard;
    subjects = 0;
    ops = 0;
    errors = 0;
    unsupported = 0;
    sim_ns = 0;
    audit_entries = 0;
    audit_ok = true;
    audit_head = "genesis";
  }

(* One shard, start to finish, inside a single domain: boot a private
   machine over the shard's population, run the shard's slice of the op
   stream from the shard's own PRNG, verify the shard's audit chain.
   Nothing here touches state owned by another shard. *)
let run_shard ~role ~seed ~prng ~population ~ops shard =
  if population = [] then empty_outcome shard
  else begin
    let shard_seed = Int64.add seed (Int64.of_int (shard + 1)) in
    let backend, machine =
      Runner.machine_backend_full ~seed:shard_seed ~population ()
    in
    let op_stream = Gdprbench.generate prng ~role ~population ~n:ops in
    let result = Runner.run backend op_stream in
    let audit = Machine.audit machine in
    let audit_ok = Audit_log.verify audit = Ok () in
    let audit_head =
      match List.rev (Audit_log.entries audit) with
      | last :: _ -> last.Audit_log.hash
      | [] -> "genesis"
    in
    {
      shard;
      subjects = List.length population;
      ops = result.Runner.total_ops;
      errors = result.Runner.errors;
      unsupported = result.Runner.unsupported;
      sim_ns = result.Runner.total_simulated_ns;
      audit_entries = Audit_log.length audit;
      audit_ok;
      audit_head;
    }
  end

let cross_link_of outcomes =
  Sha256.hexdigest
    (String.concat "|" (List.map (fun o -> o.audit_head) outcomes))

let run ?pool ?(seed = 0x5DEC0DEL) ~role ~subjects ~total_ops ~shards () =
  if shards < 1 then invalid_arg "Shard_bench.run: shards must be >= 1";
  if total_ops < 0 then invalid_arg "Shard_bench.run: negative total_ops";
  let wall0 = Unix.gettimeofday () in
  let master = Prng.create ~seed () in
  let population = Population.generate master ~n:subjects in
  let parts = partition ~shards population in
  (* one independent stream per shard, drawn in shard order *)
  let streams = Array.of_list (Prng.split_n master shards) in
  let ops_of i = (total_ops / shards) + if i < total_ops mod shards then 1 else 0 in
  let task i () =
    run_shard ~role ~seed ~prng:streams.(i) ~population:parts.(i)
      ~ops:(ops_of i) i
  in
  let outcomes =
    let indices = Array.init shards Fun.id in
    match pool with
    | Some p -> Pool.map_array p (fun i -> task i ()) indices
    | None -> Array.map (fun i -> task i ()) indices
  in
  let outcomes = Array.to_list outcomes in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
  let sim_total_ns = sum (fun o -> o.sim_ns) in
  let slowest = List.fold_left (fun acc o -> max acc o.sim_ns) 0 outcomes in
  let sim_critical_ns = slowest + (spawn_overhead_ns * shards) in
  let total_ops' = sum (fun o -> o.ops) in
  let unsupported = sum (fun o -> o.unsupported) in
  let supported = total_ops' - unsupported in
  let kops_per_sim_s =
    if sim_critical_ns = 0 then 0.0
    else
      float_of_int supported
      /. (float_of_int sim_critical_ns /. 1e9)
      /. 1e3
  in
  {
    role = Gdprbench.role_to_string role;
    shards;
    subjects;
    total_ops = total_ops';
    errors = sum (fun o -> o.errors);
    unsupported;
    sim_critical_ns;
    sim_total_ns;
    kops_per_sim_s;
    wall_seconds = Unix.gettimeofday () -. wall0;
    cross_link = cross_link_of outcomes;
    audit_ok = List.for_all (fun (o : shard_outcome) -> o.audit_ok) outcomes;
    per_shard = outcomes;
  }

let speedup ~baseline r =
  if r.sim_critical_ns = 0 then 0.0
  else float_of_int baseline.sim_critical_ns /. float_of_int r.sim_critical_ns

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v 2>%s x%d shards: %d ops over %d subjects, %.2f sim-ms critical \
     (%.2f sim-ms aggregate), %.1f kops/sim-s, audit %s@,%a@]"
    r.role r.shards r.total_ops r.subjects
    (float_of_int r.sim_critical_ns /. 1e6)
    (float_of_int r.sim_total_ns /. 1e6)
    r.kops_per_sim_s
    (if r.audit_ok then "ok" else "BROKEN")
    (Format.pp_print_list (fun fmt o ->
         Format.fprintf fmt
           "shard %d: %d subjects, %d ops, %d errors, %.2f sim-ms, %d audit \
            entries (%s)"
           o.shard o.subjects o.ops o.errors
           (float_of_int o.sim_ns /. 1e6)
           o.audit_entries
           (if o.audit_ok then "verified" else "BROKEN")))
    r.per_shard
