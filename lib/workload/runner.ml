module Clock = Rgpdos_util.Clock
module Prng = Rgpdos_util.Prng
module Stats = Rgpdos_util.Stats
module Membrane = Rgpdos_membrane.Membrane
module Value = Rgpdos_dbfs.Value
module Block_device = Rgpdos_block.Block_device
module Journalfs = Rgpdos_journalfs.Journalfs
module Userdb = Rgpdos_baseline.Userdb
module Machine = Rgpdos.Machine
module Ded = Rgpdos_ded.Ded
module Processing = Rgpdos_ded.Processing
module Audit_log = Rgpdos_audit.Audit_log

type status = Done | Failed | Unsupported

type backend = {
  name : string;
  exec : Gdprbench.op -> status;
  simulated_now : unit -> Clock.ns;
}

let backend_name b = b.name

(* size the device to the population (each PD needs a record block, a
   membrane block, and slack for produced PD, envelopes and metadata) *)
let device_config ~population =
  let n = List.length population in
  {
    Block_device.default_config with
    Block_device.block_count = max 16_384 ((n * 8) + 4_096);
  }

(* ------------------------------------------------------------------ *)
(* rgpdOS backend                                                     *)

let grant_scope purpose =
  match purpose with
  | "analytics" -> Membrane.View "v_ano"
  | "marketing" -> Membrane.View "v_contact"
  | _ -> Membrane.All

let reader_touches = function
  | "analytics" -> [ (Population.type_name, [ "year_of_birth" ]) ]
  | "marketing" -> [ (Population.type_name, [ "name"; "email" ]) ]
  | _ -> [ (Population.type_name, [ "name"; "email"; "year_of_birth" ]) ]

let counting_reader _ctx inputs =
  Ok (Processing.value_output (Value.VInt (List.length inputs)))

let machine_backend_full ?pool ~seed ~population () =
  let config = device_config ~population in
  let machine =
    Machine.boot ~seed ~pd_device:config
      ~npd_device:Block_device.default_config ()
  in
  (match Machine.load_declarations machine Population.type_declaration with
  | Ok _ -> ()
  | Error e -> failwith ("machine backend: declarations: " ^ e));
  List.iter
    (fun purpose ->
      let spec =
        match
          Machine.make_processing machine
            ~name:("wl_" ^ purpose)
            ~purpose
            ~touches:(reader_touches purpose)
              (* counting is record-wise decomposable: shard counts sum *)
            ~shard_reduce:Processing.reduce_int_sum counting_reader
        with
        | Ok s -> s
        | Error e -> failwith ("machine backend: " ^ e)
      in
      match Machine.register_processing machine spec with
      | Ok _ -> ()
      | Error e -> failwith ("machine backend: register: " ^ e))
    Population.purposes;
  let subject_pds : (string, string list) Hashtbl.t = Hashtbl.create 256 in
  let collect_person (p : Population.person) =
    match
      Machine.collect machine ~type_name:Population.type_name
        ~subject:p.Population.subject_id ~interface:"web_form:signup_form.html"
        ~record:(Population.record_of p)
        ~consents:p.Population.consent_profile ()
    with
    | Ok pd_id ->
        let existing =
          Option.value ~default:[]
            (Hashtbl.find_opt subject_pds p.Population.subject_id)
        in
        Hashtbl.replace subject_pds p.Population.subject_id (pd_id :: existing);
        Done
    | Error _ -> Failed
  in
  List.iter (fun p -> ignore (collect_person p)) population;
  let exec (op : Gdprbench.op) =
    match op with
    | Gdprbench.Op_insert p -> collect_person p
    | Gdprbench.Op_purpose_query purpose -> (
        match
          Machine.invoke machine ?pool ~name:("wl_" ^ purpose)
            ~target:(Ded.All_of_type Population.type_name) ()
        with
        | Ok _ -> Done
        | Error _ -> Failed)
    | Gdprbench.Op_subject_read subject -> (
        match Hashtbl.find_opt subject_pds subject with
        | None | Some [] -> Done (* nothing to read *)
        | Some refs -> (
            match
              Machine.invoke machine ?pool ~name:"wl_service"
                ~target:(Ded.Pd_refs refs) ()
            with
            | Ok _ -> Done
            | Error _ -> Failed))
    | Gdprbench.Op_update_consent { subject; purpose; grant } -> (
        let scope = if grant then grant_scope purpose else Membrane.Denied in
        match Machine.set_consent machine ~subject ~purpose scope with
        | Ok _ -> Done
        | Error _ -> Failed)
    | Gdprbench.Op_access subject -> (
        match Machine.right_of_access machine ~subject with
        | Ok _ -> Done
        | Error _ -> Failed)
    | Gdprbench.Op_erase subject -> (
        match Machine.right_to_erasure machine ~subject with
        | Ok _ -> Done
        | Error _ -> Failed)
    | Gdprbench.Op_ttl_sweep ->
        ignore (Machine.sweep_ttl machine ());
        Done
    | Gdprbench.Op_verify_audit -> (
        match Audit_log.verify (Machine.audit machine) with
        | Ok () -> Done
        | Error _ -> Failed)
  in
  ( {
      name = "rgpdos";
      exec;
      simulated_now = (fun () -> Clock.now (Machine.clock machine));
    },
    machine )

let machine_backend ~seed ~population =
  fst (machine_backend_full ~seed ~population ())

(* ------------------------------------------------------------------ *)
(* baseline backends                                                  *)

let baseline_backend ~seed ~mode ~population =
  ignore seed;
  let clock = Clock.create () in
  let config = device_config ~population in
  let dev = Block_device.create ~config ~clock () in
  let fs = Journalfs.format dev ~journal_blocks:256 in
  let db =
    match Userdb.create fs ~mode with
    | Ok db -> db
    | Error e -> failwith ("baseline backend: " ^ Userdb.error_to_string e)
  in
  (match Userdb.create_table db Population.type_name with
  | Ok () -> ()
  | Error e -> failwith ("baseline backend: " ^ Userdb.error_to_string e));
  let table = Population.type_name in
  let two_years = 2 * Clock.year in
  let row_of (p : Population.person) =
    {
      Userdb.subject = p.Population.subject_id;
      fields = Population.baseline_fields p;
      allowed_purposes = Population.allowed_purposes_of p;
      expires_at = Some (Clock.now clock + two_years);
    }
  in
  let insert_person p =
    match Userdb.insert db ~table (row_of p) with
    | Ok _ -> Done
    | Error _ -> Failed
  in
  List.iter (fun p -> ignore (insert_person p)) population;
  let exec (op : Gdprbench.op) =
    match op with
    | Gdprbench.Op_insert p -> insert_person p
    | Gdprbench.Op_purpose_query purpose -> (
        match
          Userdb.query_purpose db ~table ~purpose ~now:(Clock.now clock)
        with
        | Ok _ -> Done
        | Error _ -> Failed)
    | Gdprbench.Op_subject_read subject -> (
        match Userdb.rows_of_subject db ~table subject with
        | Ok _ -> Done
        | Error _ -> Failed)
    | Gdprbench.Op_update_consent { subject; purpose; grant } -> (
        match Userdb.rows_of_subject db ~table subject with
        | Error _ -> Failed
        | Ok rows ->
            let update_row (id, row) =
              let allowed =
                if grant then
                  if List.mem purpose row.Userdb.allowed_purposes then
                    row.Userdb.allowed_purposes
                  else purpose :: row.Userdb.allowed_purposes
                else
                  List.filter (( <> ) purpose) row.Userdb.allowed_purposes
              in
              Userdb.update db ~table id
                { row with Userdb.allowed_purposes = allowed }
            in
            if List.for_all (fun r -> Result.is_ok (update_row r)) rows then Done
            else Failed)
    | Gdprbench.Op_access subject -> (
        match Userdb.export_subject db ~table subject with
        | Ok _ -> Done
        | Error _ -> Failed)
    | Gdprbench.Op_erase subject -> (
        match Userdb.delete_subject ~secure:true db ~table subject with
        | Ok _ -> Done
        | Error _ -> Failed)
    | Gdprbench.Op_ttl_sweep -> (
        match Userdb.expire_rows ~secure:true db ~table ~now:(Clock.now clock) with
        | Ok _ -> Done
        | Error _ -> Failed)
    | Gdprbench.Op_verify_audit ->
        (* the baseline has no tamper-evident processing log *)
        Unsupported
  in
  let name =
    match mode with Userdb.Vanilla -> "db-vanilla" | Userdb.Gdpr -> "db-gdpr"
  in
  { name; exec; simulated_now = (fun () -> Clock.now clock) }

(* ------------------------------------------------------------------ *)
(* execution                                                          *)

type result = {
  backend : string;
  total_ops : int;
  unsupported : int;
  errors : int;
  total_simulated_ns : int;
  wall_seconds : float;
  per_op : (string * Stats.summary) list;
}

let run backend ops =
  let samples : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let unsupported = ref 0 and errors = ref 0 in
  let wall0 = Sys.time () in
  let sim0 = backend.simulated_now () in
  List.iter
    (fun op ->
      let t0 = backend.simulated_now () in
      let status = backend.exec op in
      let dt = backend.simulated_now () - t0 in
      (match status with
      | Done ->
          let key = Gdprbench.op_kind op in
          let bucket =
            match Hashtbl.find_opt samples key with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace samples key l;
                l
          in
          bucket := float_of_int dt :: !bucket
      | Failed -> incr errors
      | Unsupported -> incr unsupported))
    ops;
  let per_op =
    Hashtbl.fold
      (fun key samples acc -> (key, Stats.summarize !samples) :: acc)
      samples []
    |> List.sort compare
  in
  {
    backend = backend.name;
    total_ops = List.length ops;
    unsupported = !unsupported;
    errors = !errors;
    total_simulated_ns = backend.simulated_now () - sim0;
    wall_seconds = Sys.time () -. wall0;
    per_op;
  }

let ops_per_simulated_second r =
  if r.total_simulated_ns = 0 then 0.0
  else
    float_of_int (r.total_ops - r.unsupported)
    /. (float_of_int r.total_simulated_ns /. 1e9)

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v 2>%s: %d ops (%d unsupported, %d errors), %.2f simulated ms, %.0f ops/sim-s@,%a@]"
    r.backend r.total_ops r.unsupported r.errors
    (float_of_int r.total_simulated_ns /. 1e6)
    (ops_per_simulated_second r)
    (Format.pp_print_list (fun fmt (kind, s) ->
         Format.fprintf fmt "%-16s %a" kind Stats.pp_summary s))
    r.per_op
