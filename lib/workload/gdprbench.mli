(** GDPRBench-style workload mixes.

    Shastri et al. (VLDB 2020) — the operational prior work the paper
    cites — model four roles exercising a GDPR-compliant store.  We
    reproduce their roles as operation mixes over the synthetic
    {!Population}:

    - {b controller}: the operator curates data — inserts, consent
      metadata updates, storage-limitation sweeps;
    - {b customer}: data subjects exercise rights — access, consent
      changes, erasure;
    - {b processor}: purpose-bound processing dominates — query all PD a
      purpose may read;
    - {b regulator}: audits — access exports and log verification.

    Subject selection is Zipf-skewed (theta 0.99, YCSB-style). *)

type op =
  | Op_insert of Population.person
  | Op_purpose_query of string
  | Op_subject_read of string   (** run the service processing on one subject *)
  | Op_update_consent of { subject : string; purpose : string; grant : bool }
  | Op_access of string         (** right of access *)
  | Op_erase of string          (** right to be forgotten *)
  | Op_ttl_sweep
  | Op_verify_audit

val op_kind : op -> string
(** Short label for grouping: "insert", "purpose_query", ... *)

type role = Controller | Customer | Processor | Regulator

val role_to_string : role -> string
val all_roles : role list

val mix : role -> (string * float) list
(** The op-kind distribution of a role (weights sum to 1). *)

val generate :
  Rgpdos_util.Prng.t ->
  role:role ->
  population:Population.person list ->
  n:int ->
  op list
(** [n] operations; subjects drawn Zipf-skewed from the population; new
    people synthesized for inserts. *)
