module Prng = Rgpdos_util.Prng
module Membrane = Rgpdos_membrane.Membrane
module Value = Rgpdos_dbfs.Value

type person = {
  subject_id : string;
  name : string;
  email : string;
  year_of_birth : int;
  consent_profile : (string * Membrane.consent_scope) list;
}

let purposes = [ "service"; "analytics"; "marketing" ]

let type_name = "person"

let type_declaration =
  {|
type person {
  fields {
    name: string,
    email: string,
    year_of_birth: int
  };
  view v_contact { name, email };
  view v_ano { year_of_birth };
  consent {
    service: all,
    analytics: v_ano,
    marketing: none
  };
  collection {
    web_form: signup_form.html
  };
  index { email, year_of_birth };
  origin: subject;
  age: 2Y;
  sensitivity: medium;
}

purpose service {
  description: "operate the account the subject contracted for";
  reads: person;
  legal_basis: contract;
}

purpose analytics {
  description: "aggregate usage statistics over anonymised attributes";
  reads: person.v_ano;
  produces: person;
  legal_basis: consent;
}

purpose marketing {
  description: "send promotional offers to subscribed users";
  reads: person.v_contact;
  legal_basis: consent;
}
|}

let syllables =
  [| "ka"; "mi"; "lo"; "ra"; "ben"; "chi"; "ve"; "na"; "tou"; "sel"; "dar";
     "ya"; "zo"; "fe"; "lu" |]

let make_name prng =
  let syllable () = syllables.(Prng.int prng (Array.length syllables)) in
  let cap s = String.capitalize_ascii s in
  cap (syllable () ^ syllable ()) ^ " " ^ cap (syllable () ^ syllable () ^ syllable ())

let consent_profile prng =
  let analytics =
    if Prng.bernoulli prng 0.70 then Membrane.View "v_ano" else Membrane.Denied
  in
  let marketing =
    if Prng.bernoulli prng 0.30 then Membrane.View "v_contact" else Membrane.Denied
  in
  [ ("service", Membrane.All); ("analytics", analytics); ("marketing", marketing) ]

let generate prng ~n =
  List.init n (fun i ->
      let name = make_name prng in
      let email =
        Printf.sprintf "%s%d@example.test"
          (String.lowercase_ascii
             (String.concat "." (String.split_on_char ' ' name)))
          i
      in
      {
        subject_id = Printf.sprintf "sub-%06d" i;
        name;
        email;
        year_of_birth = Prng.int_in prng 1940 2007;
        consent_profile = consent_profile prng;
      })

let record_of p =
  [
    ("name", Value.VString p.name);
    ("email", Value.VString p.email);
    ("year_of_birth", Value.VInt p.year_of_birth);
  ]

let baseline_fields p =
  [
    ("name", p.name);
    ("email", p.email);
    ("year_of_birth", string_of_int p.year_of_birth);
  ]

let allowed_purposes_of p =
  List.filter_map
    (fun (purpose, scope) ->
      match scope with Membrane.Denied -> None | _ -> Some purpose)
    p.consent_profile
