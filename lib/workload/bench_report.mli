(** Machine-readable benchmark artifact ([BENCH_hotpath.json]).

    The bench binary's [--json PATH] mode assembles one of these from the
    bechamel micro rows and the E1/E4 experiment results, so perf changes
    are reviewable as a committed diff instead of eyeballed table output.
    [validate] is what the test suite runs against the emitted file. *)

module Json = Rgpdos_util.Json

type micro_row = {
  name : string;  (** bechamel test name, e.g. "core/sha256/1KiB" *)
  ns_per_op : float;  (** OLS estimate, host wall clock *)
  r2 : float;
}

val schema_id : string
(** Value of the report's ["schema"] key; bump on layout changes. *)

val make :
  quick:bool ->
  micro:micro_row list ->
  ?e1:Experiments.e1_result * float ->
  ?e4:Experiments.e4_row list * float ->
  unit ->
  Json.t
(** [make ~quick ~micro ?e1 ?e4 ()] builds the report.  The [float]
    paired with each experiment result is its host wall-clock runtime in
    milliseconds (the simulated figures live inside the result itself). *)

val validate : Json.t -> (unit, string) result
(** Shape check: schema id, non-empty [micro] with the hot-path rows
    ("sha256/1KiB", "chacha20/1KiB", "audit/append") present and numeric,
    and — when present — well-formed [e1]/[e4] sections. *)

val write_file : string -> Json.t -> unit

val read_file : string -> Json.t option
(** Parse a previously written report; [None] on malformed JSON. *)

val merge_ratio : (string * int) list -> float
(** Per-block reads per charged seek, from device counters
    ("reads" / "merged_runs"); 1.0 when no vectored run was charged. *)

(** {1 Vectored-IO artifact ([BENCH_vectored_io.json])} *)

val vectored_schema_id : string

val make_vectored :
  scalar:Experiments.e1_result ->
  scalar_wall_ms:float ->
  vectored:Experiments.e1_result ->
  vectored_wall_ms:float ->
  ?baseline:Json.t ->
  unit ->
  Json.t
(** Build the before/after evidence for the vectored IO path: the same E1
    scale run with the scalar device cost model (one seek per block) and
    with run-merging vectored charging, stage-level [reduction_pct], and
    (when [baseline] — the committed hotpath report — is given) a
    per-subject comparison against its E1 section. *)

val validate_vectored : Json.t -> (unit, string) result
(** Shape check plus the acceptance bar: [ded_load_membrane],
    [ded_load_data], and their combination must each show >= 30%%
    simulated-time reduction. *)

(** {1 Regression comparison (bench [--compare])} *)

val regression_threshold_pct : float
(** A stage regresses when its per-subject simulated time grows by more
    than this percentage (and by more than a small absolute epsilon, so
    the sub-microsecond fixed-cost stages cannot trip the gate). *)

val compare_e1 :
  old_report:Json.t -> Experiments.e1_result -> (int, string list) result
(** Compare a fresh E1 run against the [e1] section of a previously
    committed report, per-subject.  [Ok n] reports how many stages were
    checked; [Error lines] lists every regressed stage. *)

(** {1 Parallel-scale artifact ([BENCH_parallel_scale.json])} *)

val scale_schema_id : string

type scale_row = {
  domains : int;
  sim_critical_ns : int;
  sim_total_ns : int;
  kops_per_sim_s : float;
  wall_s : float;
  speedup : float;  (** vs the 1-domain row of the same sweep *)
}

val speedup_bar : float
(** Acceptance bar for the 4-domain speedup (2.5x). *)

val scale_row_of_report :
  baseline:Shard_bench.report -> Shard_bench.report -> scale_row
(** Project a sharded run into an artifact row, computing [speedup]
    against [baseline] (normally the 1-shard run of the same sweep). *)

val make_scale :
  role:string ->
  subjects:int ->
  total_ops:int ->
  rows:scale_row list ->
  e1_seq:Experiments.e1_result ->
  e1_par:Experiments.e1_result ->
  e1_cores:int ->
  unit ->
  Json.t
(** The committed evidence for the multicore layer: the 1->2->4->8-domain
    speedup curve of the processor-role GDPRBench mix, plus the E1
    [ded_execute] before ([e1_seq], [~cores:1]) / after ([e1_par],
    [e1_cores] cores) pair. *)

val validate_scale : Json.t -> (unit, string) result
(** Shape check plus the acceptance bars: a 4-domain row with speedup >=
    {!speedup_bar}, and a positive parallel [ded_execute] reduction. *)

val scale_speedup_at : Json.t -> int -> float option
(** The [speedup] of the row with the given domain count, if present. *)

val compare_vectored :
  old_report:Json.t -> subjects:int -> merge_ratio:float ->
  (float, string) result
(** Gate a freshly measured merge ratio against the committed
    [BENCH_vectored_io.json]: fails on a > {!regression_threshold_pct}%%
    drop.  Both sides are normalised to blocks-per-seek {i per subject}
    (the ratio scales with the dataset), so a [--quick] run gates
    honestly against the full-scale artifact.  [Ok] returns the
    committed (un-normalised) ratio. *)

val compare_scale :
  old_report:Json.t -> speedup4:float -> (float, string) result
(** Gate a freshly measured 4-domain speedup against the committed
    [BENCH_parallel_scale.json], same threshold. *)

(** {1 Index-select artifact ([BENCH_index_select.json])} *)

val index_schema_id : string

val index_speedup_bar : float
(** Acceptance bar for the 1%%-selectivity Eq probe at 2000+ subjects
    (10x vs the full scan). *)

val ttl_speedup_bar : float
(** Acceptance bar for the expiry-queue sweep vs the full membrane scan
    at the largest aged population (2x). *)

val make_index : result:Experiments.eidx_result -> wall_ms:float -> Json.t
(** The committed evidence for the secondary-index layer: the selectivity
    x population sweep of {!Experiments.e_index_select} (full scan vs
    pushdown, same store, identical results asserted) and the
    full-vs-incremental TTL sweep pair. *)

val validate_index : Json.t -> (unit, string) result
(** Shape check plus the acceptance bars: the 1%%-selectivity row at the
    smallest population >= 2000 (present at both quick and full scale)
    must show >= {!index_speedup_bar} speedup, and the largest TTL row
    >= {!ttl_speedup_bar}. *)

val compare_index :
  old_report:Json.t -> speedup1pct:float -> (float, string) result
(** Gate a freshly measured 1%%-selectivity pushdown speedup against the
    committed [BENCH_index_select.json], same
    {!regression_threshold_pct} threshold. *)

(** {1 Fault-campaign artifact ([BENCH_fault_campaign.json])} *)

val fault_schema_id : string

val fault_pass_bar : float
(** 100.0 — the robustness gate is absolute: all three invariants must
    hold at every enumerated crash point (no regression margin). *)

val make_fault :
  result:Fault_campaign.result -> ?wall_ms:float -> unit -> Json.t
(** The committed robustness evidence: one verdict row per crash point of
    the scripted GDPR workload plus the named fault scenarios
    ({!Fault_campaign.to_json}). *)

val validate_fault : Json.t -> (unit, string) result
(** Shape check plus the acceptance bars: when the campaign claims to be
    exhaustive ([sampled = false]) every write ordinal [1..total_writes]
    must appear among the points, the invariant pass rate must be
    {!fault_pass_bar}, and every scenario must pass. *)

val compare_fault :
  old_report:Json.t -> pass_rate_pct:float -> (float, string) result
(** Gate a freshly run campaign against the committed
    [BENCH_fault_campaign.json]: both must sit at a 100%% invariant pass
    rate. *)

(** {1 Model-refinement artifact ([BENCH_model_check.json])} *)

val model_schema_id : string

val model_conformance_bar : float
(** 100.0 — refinement is absolute: every observable comparison, every
    crash-refinement run and every linearizability shard must agree with
    the executable model (no regression margin). *)

val make_model :
  result:Rgpdos_model.Refine.report -> ?wall_ms:float -> unit -> Json.t
(** The committed refinement evidence: campaign counters plus every
    (shrunk, replayable) counterexample ({!Rgpdos_model.Refine.to_json}). *)

val validate_model : Json.t -> (unit, string) result
(** Shape check plus the acceptance bars: positive script / comparison /
    crash-run / fault-point counts, crash coverage of all 18 configs,
    linearizability at 1/2/4 domains, conformance at
    {!model_conformance_bar} with an empty failure list. *)

val compare_model :
  old_report:Json.t -> conformance_pct:float -> (float, string) result
(** Gate a freshly run refinement campaign against the committed
    [BENCH_model_check.json]: both must sit at 100%% conformance. *)

(** {1 Mount-scale artifact ([BENCH_mount_scale.json])} *)

val mount_schema_id : string

val mount_read_ratio_bar : float
(** 2.0 — clean-mount device reads at the largest population must stay
    within 2x of the smallest (the O(1)-recovery claim). *)

val make_mount : result:Mount_bench.result -> wall_ms:float -> Json.t
(** The committed evidence for the paged-index layer: one row per
    population (clean-mount reads, simulated latency, resident cache
    entries, index node pages) plus the Zipf-budget workload counters
    ({!Mount_bench.run}). *)

val validate_mount : Json.t -> (unit, string) result
(** Shape check plus the acceptance bars: at least two populations, the
    max/min mount-read ratio within {!mount_read_ratio_bar}, the Zipf
    run's resident high-water within its budget with evictions actually
    occurring (the budget was binding), and every workload op [Ok]. *)

val compare_mount :
  old_report:Json.t -> read_ratio_max:float -> (float, string) result
(** Gate a freshly measured mount-read ratio against the committed
    [BENCH_mount_scale.json], same {!regression_threshold_pct} threshold
    (the metric is higher-is-worse, so the gate is a ceiling). *)

(** {1 Segment-IO artifact ([BENCH_segment_io.json])} *)

val segment_schema_id : string

val segment_amp_ratio_bar : float
(** 2.0 — the segmented store must show at least 2x lower write
    amplification (device bytes written per logical byte ingested) than
    update-in-place on the identical workload. *)

val make_segment : result:Segment_bench.result -> wall_ms:float -> Json.t
(** The committed evidence for the log-structured layer: both sides of
    the A/B run ({!Segment_bench.run}) with write amplification,
    sustained ingest, group-commit / compaction counters, and the
    residue verdicts. *)

val validate_segment : Json.t -> (unit, string) result
(** Shape check plus the acceptance bars: >= 10^4 subjects, write-amp
    ratio >= {!segment_amp_ratio_bar}, ingest ratio > 1, group-commit
    batches > 0 on the segmented side, and both sides residue-clean. *)

val segment_ingest_of : Json.t -> float option
(** The segmented side's sustained-ingest figure (MB per simulated
    second) of a segment-IO report, when present. *)

val compare_segment :
  old_report:Json.t -> ingest_mb_s:float -> (float, string) result
(** Gate a freshly measured segmented sustained-ingest figure against the
    committed [BENCH_segment_io.json]; the metric is higher-is-better, so
    the gate is a floor at {!regression_threshold_pct} below committed. *)

(** {1 Rights-SLA artifact ([BENCH_rights_sla.json])} *)

val sla_schema_id : string

val sla_improvement_bar : float
(** 5.0 — the EDF deadline lane must cut the Art. 15 access p99 by at
    least this factor against FIFO on the identical saturating
    schedule. *)

val make_sla : result:Sla_bench.result -> wall_ms:float -> Json.t
(** The committed evidence for the deadline lane: both dispatcher sides
    of the A/B run ({!Sla_bench.run}) with per-right p50/p99/miss rows
    and the canonical scheduler counters, the per-right p99 improvement
    factors, and the consent-storm / Art. 33 breach scenario verdicts. *)

val validate_sla : Json.t -> (unit, string) result
(** Shape check plus the acceptance bars: both sides served the same
    (non-zero) Art. 15 count, the EDF side preempted at least once and
    missed {i no} deadline (per-class and counter-wise), the FIFO side
    reports zero preemptions, the storm drained with zero misses, the
    breach enumeration found subjects and met its deadline, and the
    Art. 15 p99 improvement clears {!sla_improvement_bar}. *)

val sla_improvement_of : Json.t -> float option
(** The committed Art. 15 p99 improvement factor, when present. *)

val compare_sla :
  old_report:Json.t -> improvement15:float -> (float, string) result
(** Gate a freshly measured Art. 15 improvement against the committed
    [BENCH_rights_sla.json].  The factor deepens with schedule length,
    so quick and full runs are not comparable by percentage — the gate
    holds {i both} the committed figure and the fresh measurement to
    the absolute {!sla_improvement_bar}. *)

(** {1 Async block-I/O artifact ([BENCH_async_io.json])} *)

val async_schema_id : string

val async_speedup_bar : float
(** 1.8 — at queue depth >= 4 the pipelined DED load stages must beat
    the same binary with async off by at least this factor. *)

val async_overlap_bar : float
(** 40.0 — percent of async device service that must be hidden behind
    compute at the best depth >= 4. *)

val make_async : result:Async_bench.result -> wall_ms:float -> Json.t
(** The committed evidence for the submission/completion queues: the
    depth sweep per population size ({!Async_bench.run}) with the sync
    baseline, per-depth load/total speedups, the overlap ratio, and the
    per-size async==sync invariant verdict. *)

val validate_async : Json.t -> (unit, string) result
(** Shape check plus the acceptance bars: a non-empty size sweep, every
    size run holding the async==sync invariant and containing a row at
    depth >= 4, best load-stage speedup >= {!async_speedup_bar} and
    best overlap >= {!async_overlap_bar}. *)

val async_speedup_of : Json.t -> float option
(** The committed best load-stage speedup at depth >= 4, when present. *)

val async_overlap_of : Json.t -> float option
(** The committed best overlap percentage at depth >= 4, when present. *)

val compare_async :
  old_report:Json.t -> speedup:float -> overlap:float -> (float, string) result
(** Gate a fresh async A/B against the committed [BENCH_async_io.json].
    Overlap deepens with batch size, so quick and full runs are not
    comparable by percentage — both the committed figures and the fresh
    measurement are held to the absolute {!async_speedup_bar} /
    {!async_overlap_bar}. *)
