(** Machine-readable benchmark artifact ([BENCH_hotpath.json]).

    The bench binary's [--json PATH] mode assembles one of these from the
    bechamel micro rows and the E1/E4 experiment results, so perf changes
    are reviewable as a committed diff instead of eyeballed table output.
    [validate] is what the test suite runs against the emitted file. *)

module Json = Rgpdos_util.Json

type micro_row = {
  name : string;  (** bechamel test name, e.g. "core/sha256/1KiB" *)
  ns_per_op : float;  (** OLS estimate, host wall clock *)
  r2 : float;
}

val schema_id : string
(** Value of the report's ["schema"] key; bump on layout changes. *)

val make :
  quick:bool ->
  micro:micro_row list ->
  ?e1:Experiments.e1_result * float ->
  ?e4:Experiments.e4_row list * float ->
  unit ->
  Json.t
(** [make ~quick ~micro ?e1 ?e4 ()] builds the report.  The [float]
    paired with each experiment result is its host wall-clock runtime in
    milliseconds (the simulated figures live inside the result itself). *)

val validate : Json.t -> (unit, string) result
(** Shape check: schema id, non-empty [micro] with the hot-path rows
    ("sha256/1KiB", "chacha20/1KiB", "audit/append") present and numeric,
    and — when present — well-formed [e1]/[e4] sections. *)

val write_file : string -> Json.t -> unit
