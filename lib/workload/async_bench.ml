(* Same-build A/B for the asynchronous block-I/O path: one binary, one
   workload (the E1 DED pipeline), the device booted with [async = false]
   (the scalar charging model every committed baseline was measured
   under) against [async = true] at a sweep of queue depths.

   The probe is [Experiments.e1_ded_stages]: its load stages
   (ded_load_membrane + ded_load_data) are where the pipelined fetches
   overlap decode with in-flight device service, so the headline figure
   is the load-stage speedup.  The run also cross-checks the async==sync
   invariant at bench scale: every byte-movement device counter (reads,
   writes, bytes_read, bytes_written, write_ops, trims) must be
   identical between the sides, and the per-stage breakdown must list
   the same stages — async moves simulated time, never bytes or
   outcomes. *)

module Stats = Rgpdos_util.Stats

let load_stage_ns (r : Experiments.e1_result) =
  List.fold_left
    (fun acc (stage, ns) ->
      if String.length stage >= 8 && String.sub stage 0 8 = "ded_load" then
        acc + ns
      else acc)
    0 r.Experiments.e1_stage_ns

let counter r name =
  match List.assoc_opt name r.Experiments.e1_device with
  | Some v -> v
  | None -> 0

(* The A/B carve-out: pipelining splits one big batch read into
   [queue_depth] in-flight vectored ops, so the {i submission-shape}
   counters (how many vec ops, how many merged runs, the async queue
   telemetry) legitimately differ between the sides.  What must be
   identical is byte movement — every per-block and per-byte total —
   plus outcomes and stages.  (The qcheck law in test_async is stricter:
   at the device level, where the op script itself is fixed, only
   queue_depth_highwater and overlap_ns_hidden may differ.) *)
let byte_movement_counters =
  [ "reads"; "writes"; "bytes_read"; "bytes_written"; "write_ops"; "trims" ]

let counters_equal_modulo_latency a b =
  let pick r =
    List.map
      (fun k ->
        (k, Option.value ~default:0 (List.assoc_opt k r.Experiments.e1_device)))
      byte_movement_counters
  in
  pick a = pick b

type depth_row = {
  ar_depth : int;
  ar_total_ns : int;
  ar_load_ns : int;
  ar_load_speedup : float;
  ar_total_speedup : float;
  ar_overlap_pct : float;
  ar_submits : int;
  ar_highwater : int;
}

type size_run = {
  as_subjects : int;
  as_sync_total_ns : int;
  as_sync_load_ns : int;
  as_rows : depth_row list;
  as_invariant_ok : bool;
      (* stages + all byte-movement device counters identical across
         every async depth and the sync side *)
}

type result = {
  a_depths : int list;
  a_sizes : size_run list;
  a_best_load_speedup : float;  (* best load-stage speedup at depth >= 4 *)
  a_best_overlap_pct : float;   (* best overlap ratio at depth >= 4 *)
}

let ratio num den = float_of_int num /. float_of_int (max 1 den)

let run_size ~depths ~subjects =
  let sync = Experiments.e1_ded_stages ~subjects ~async:false () in
  let sync_load = load_stage_ns sync in
  let invariant = ref true in
  let rows =
    List.map
      (fun depth ->
        let r =
          Experiments.e1_ded_stages ~subjects ~async:true ~queue_depth:depth ()
        in
        if
          (not (counters_equal_modulo_latency sync r))
          || List.map fst sync.Experiments.e1_stage_ns
             <> List.map fst r.Experiments.e1_stage_ns
        then invariant := false;
        let load = load_stage_ns r in
        {
          ar_depth = depth;
          ar_total_ns = r.Experiments.e1_total_ns;
          ar_load_ns = load;
          ar_load_speedup = ratio sync_load load;
          ar_total_speedup =
            ratio sync.Experiments.e1_total_ns r.Experiments.e1_total_ns;
          ar_overlap_pct =
            100.0 *. ratio (counter r "overlap_ns_hidden") (counter r "async_service_ns");
          ar_submits = counter r "async_submits";
          ar_highwater = counter r "queue_depth_highwater";
        })
      depths
  in
  {
    as_subjects = subjects;
    as_sync_total_ns = sync.Experiments.e1_total_ns;
    as_sync_load_ns = sync_load;
    as_rows = rows;
    as_invariant_ok = !invariant;
  }

let run ?(depths = [ 1; 4; 16; 64 ]) ?(sizes = [ 2_000; 8_000 ]) () =
  if depths = [] then invalid_arg "Async_bench.run: empty depth sweep";
  if sizes = [] then invalid_arg "Async_bench.run: empty size sweep";
  let sizes_r = List.map (fun n -> run_size ~depths ~subjects:n) sizes in
  let best f =
    List.fold_left
      (fun acc s ->
        List.fold_left
          (fun acc row -> if row.ar_depth >= 4 then max acc (f row) else acc)
          acc s.as_rows)
      0.0 sizes_r
  in
  {
    a_depths = depths;
    a_sizes = sizes_r;
    a_best_load_speedup = best (fun r -> r.ar_load_speedup);
    a_best_overlap_pct = best (fun r -> r.ar_overlap_pct);
  }

let render r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let msf ns = float_of_int ns /. 1e6 in
  pf "async block I/O A/B: same build, E1 DED pipeline, async off vs on\n";
  List.iter
    (fun s ->
      pf "  %d subjects: sync total %.3f ms (load stages %.3f ms)%s\n"
        s.as_subjects (msf s.as_sync_total_ns) (msf s.as_sync_load_ns)
        (if s.as_invariant_ok then "" else "  [INVARIANT VIOLATED]");
      List.iter
        (fun row ->
          pf
            "    depth %-3d total %8.3f ms (%.2fx)  load %8.3f ms (%.2fx)  \
             overlap %5.1f%%  submits %d  highwater %d\n"
            row.ar_depth (msf row.ar_total_ns) row.ar_total_speedup
            (msf row.ar_load_ns) row.ar_load_speedup row.ar_overlap_pct
            row.ar_submits row.ar_highwater)
        s.as_rows)
    r.a_sizes;
  pf "  best load-stage speedup at depth>=4: %.2fx, best overlap: %.1f%%\n"
    r.a_best_load_speedup r.a_best_overlap_pct;
  Buffer.contents b
