(** Sharded GDPRBench throughput driver.

    Partitions the synthetic population across [K] independent machine
    shards by subject hash (FNV-1a over the subject id), gives every
    shard its own split PRNG stream, virtual clock, DBFS and audit
    chain, and runs the role's op mix on each shard — on real domains
    when a {!Rgpdos_util.Pool.t} is supplied, inline otherwise.  Either
    way the report is byte-identical except for host [wall_seconds]:
    shards share no mutable state, so parallelism is unobservable in
    simulated time, outcomes and audit verdicts.

    Throughput is reported against the {b critical path}: the slowest
    shard's simulated time plus a per-shard spawn overhead, which is
    what a machine running the shards on [K] cores would take. *)

type shard_outcome = {
  shard : int;
  subjects : int;          (** population resident on this shard *)
  ops : int;               (** ops issued to this shard *)
  errors : int;
  unsupported : int;
  sim_ns : int;            (** simulated time this shard ran for *)
  audit_entries : int;
  audit_ok : bool;         (** this shard's chain verifies *)
  audit_head : string;     (** hex digest of the chain head ("genesis" if empty) *)
}

type report = {
  role : string;
  shards : int;
  subjects : int;
  total_ops : int;
  errors : int;
  unsupported : int;
  sim_critical_ns : int;
      (** max shard [sim_ns] + {!spawn_overhead_ns} per shard — the
          virtual wall-clock of a K-core run *)
  sim_total_ns : int;  (** sum of shard [sim_ns] — aggregate core-time *)
  kops_per_sim_s : float;
      (** supported ops per simulated second of critical path, in
          thousands *)
  wall_seconds : float;  (** host wall-clock for the whole fan-out *)
  cross_link : string;
      (** SHA-256 over every verified shard head, in shard order — one
          digest binding the per-shard chains into a single auditable
          unit *)
  audit_ok : bool;  (** every shard chain verified *)
  per_shard : shard_outcome list;  (** in shard order *)
}

val spawn_overhead_ns : int
(** Simulated cost charged per shard spawned (matches the DED's
    per-shard spawn overhead). *)

val partition :
  shards:int -> Population.person list -> Population.person list array
(** Deterministic subject-hash partition; order within a shard follows
    the input order. *)

val run :
  ?pool:Rgpdos_util.Pool.t ->
  ?seed:int64 ->
  role:Gdprbench.role ->
  subjects:int ->
  total_ops:int ->
  shards:int ->
  unit ->
  report
(** Generate a [subjects]-person population from [seed], partition it
    into [shards], and run [total_ops] (split evenly, earlier shards get
    the remainder) of [role]'s mix.  A shard the hash left empty (only
    plausible for tiny populations) runs nothing and contributes an
    empty outcome.
    @raise Invalid_argument if [shards < 1] or [total_ops < 0]. *)

val speedup : baseline:report -> report -> float
(** [baseline.sim_critical_ns / r.sim_critical_ns] — how much faster the
    sharded run completes than the baseline (normally 1-shard) run. *)

val pp_report : Format.formatter -> report -> unit
