(* Segment-IO benchmark: the log-structured PR's A/B evidence.

   One build, two stores on identical devices and identical workloads:

     A. update-in-place (the seed allocator): every journal append is its
        own device write, every update/delete zeroes the superseded
        extent synchronously;
     B. segmented: journal appends group-commit in one vectored write per
        window, extents bump-allocate into append-only segments,
        superseded extents die wholesale — by segment-granular trim when
        the compactor (or a purge) finds the segment fully dead.

   The workload is ingest-then-churn at >= 10^4 subjects: bulk insert,
   several rounds of record updates (the churn that manufactures dead
   blocks), then a GDPR slice of erasures and deletions.  Reported per
   side: write amplification (device bytes written per logical payload
   byte ingested), sustained ingest (logical MB per simulated second),
   and the group-commit / compaction counters.  Both sides must finish
   residue-clean: no erased or deleted record marker anywhere on the raw
   device image. *)

module Clock = Rgpdos_util.Clock
module Stats = Rgpdos_util.Stats
module Fnv = Rgpdos_util.Fnv
module Block_device = Rgpdos_block.Block_device
module Dbfs = Rgpdos_dbfs.Dbfs
module Schema = Rgpdos_dbfs.Schema
module Value = Rgpdos_dbfs.Value
module Record = Rgpdos_dbfs.Record
module Membrane = Rgpdos_membrane.Membrane

type side = {
  sg_label : string;
  sg_subjects : int;
  sg_updates : int;
  sg_erasures : int;
  sg_deletes : int;
  sg_window : int;
  sg_logical_bytes : int; (* payload bytes handed to the store *)
  sg_blocks_written : int; (* device blocks written, all causes *)
  sg_bytes_written : int;
  sg_trims : int; (* device trim commands (zero bytes charged) *)
  sg_write_amp : float; (* bytes_written / logical_bytes *)
  sg_ingest_mb_s : float; (* logical MB per simulated second *)
  sg_sim_ms : float;
  sg_batches : int; (* group-commit flushes *)
  sg_batched_ops : int; (* journal records committed through them *)
  sg_compactions : int;
  sg_relocations : int;
  sg_segments_reclaimed : int;
  sg_backpressure_stalls : int;
  sg_residue_clean : bool; (* no erased/deleted marker on the image *)
}

type result = {
  sr_baseline : side;
  sr_segmented : side;
  sr_amp_ratio : float; (* baseline amp / segmented amp: > 1 is a win *)
  sr_ingest_ratio : float; (* segmented ingest / baseline ingest *)
}

let actor = "ded"

let fail what e = failwith (Printf.sprintf "Segment_bench %s: %s" what e)

let schema () =
  match
    Schema.make ~name:"reading"
      ~fields:
        [
          { Schema.fname = "payload"; ftype = Value.TString; required = true };
          { Schema.fname = "bucket"; ftype = Value.TInt; required = true };
        ]
      ~default_consents:[ ("service", Membrane.All) ]
      ~collection:[ ("sensor", "ingest_pipe") ]
      ~default_ttl:(2 * Clock.year)
        (* only the int bucket is indexed: marker strings must never
           reach an index page, or the residue scan would read stale
           tree halves instead of payload extents *)
      ~indexed_fields:[ "bucket" ] ()
  with
  | Ok s -> s
  | Error e -> fail "schema" e

let subject_of i = Printf.sprintf "sub-%07d" i

(* The erasure / deletion targets are fixed up front so their records can
   carry a distinctive marker prefix from the first write: the forensic
   sweep is then ONE whole-image scan for the prefix instead of one scan
   per doomed version. *)
let gdpr_targets ~subjects =
  let n20 = subjects / 20 in
  let erased = List.init n20 (fun i -> i * 19 mod subjects) in
  let deleted =
    List.filter
      (fun idx -> not (List.mem idx erased))
      (List.init n20 (fun i -> ((i * 19) + 7) mod subjects))
  in
  (erased, deleted)

let doomed_prefix = "GONE-"

(* Distinctive, greppable payload markers.  [marker ~doomed i v] is
   version [v] of subject [i]'s record body; doomed subjects (the ones
   later erased or deleted) are the ones whose bytes must not survive. *)
let marker ~doomed i v =
  Printf.sprintf "%s%07d-v%03d-PAYLOAD"
    (if doomed then doomed_prefix else "KEEP-")
    i v

let record_of ~doomed i v =
  [
    ("payload", Value.VString (marker ~doomed i v));
    ("bucket", Value.VInt (i mod 97));
  ]

let config_for n =
  let journal = max 256 (n / 8) in
  {
    Block_device.default_config with
    Block_device.block_count = max 16_384 ((n * 8) + journal + 4_096);
  }

let journal_blocks_for n = max 256 (n / 8)

let counter c name = Stats.Counter.get c name

(* One full workload on one store configuration. *)
let run_side ~label ~segmented ~window ~subjects ~update_rounds =
  let clock = Clock.create () in
  let config = config_for subjects in
  let dev = Block_device.create ~config ~clock () in
  let t =
    Dbfs.format ~segmented dev ~journal_blocks:(journal_blocks_for subjects)
  in
  if window > 1 then Dbfs.set_group_commit t window;
  let schema = schema () in
  (match Dbfs.create_type t ~actor schema with
  | Ok () -> ()
  | Error e -> fail "create_type" (Dbfs.error_to_string e));
  let logical = ref 0 in
  let note_record r = logical := !logical + String.length (Record.encode r) in
  let pds = Array.make subjects "" in
  let erased, deleted = gdpr_targets ~subjects in
  let doomed = Array.make subjects false in
  List.iter (fun idx -> doomed.(idx) <- true) (erased @ deleted);
  (* ingest *)
  for i = 0 to subjects - 1 do
    let subject = subject_of i in
    let record = record_of ~doomed:doomed.(i) i 0 in
    match
      Dbfs.insert t ~actor ~subject ~type_name:"reading" ~record
        ~membrane_of:(fun ~pd_id ->
          let m =
            Membrane.make ~pd_id ~type_name:"reading" ~subject_id:subject
              ~origin:schema.Schema.default_origin
              ~consents:schema.Schema.default_consents
              ~created_at:(Clock.now clock) ?ttl:schema.Schema.default_ttl
              ~sensitivity:schema.Schema.default_sensitivity
              ~collection:schema.Schema.collection ()
          in
          logical := !logical + String.length (Membrane.encode m);
          m)
    with
    | Ok pd_id ->
        pds.(i) <- pd_id;
        note_record record
    | Error e -> fail "insert" (Dbfs.error_to_string e)
  done;
  (* churn: every subject's record rewritten [update_rounds] times *)
  for v = 1 to update_rounds do
    for i = 0 to subjects - 1 do
      let record = record_of ~doomed:doomed.(i) i v in
      match Dbfs.update_record t ~actor pds.(i) record with
      | Ok () -> note_record record
      | Error e -> fail "update" (Dbfs.error_to_string e)
    done
  done;
  (* GDPR slice: erase 1/20, delete a disjoint 1/20 *)
  List.iter
    (fun idx ->
      match
        Dbfs.erase_with t ~actor pds.(idx) ~seal:(fun r ->
            "SEALED:" ^ Fnv.hash64_hex (Record.encode r))
      with
      | Ok () -> ()
      | Error e -> fail "erase" (Dbfs.error_to_string e))
    erased;
  List.iter
    (fun idx ->
      match Dbfs.delete t ~actor pds.(idx) with
      | Ok () -> ()
      | Error e -> fail "delete" (Dbfs.error_to_string e))
    deleted;
  Dbfs.flush_journal t;
  Dbfs.checkpoint t;
  let dstats = Block_device.stats dev in
  let fstats = Dbfs.stats t in
  let sim_ns = Clock.now clock in
  (* forensic sweep: no version of any erased or deleted subject's record
     may survive anywhere on the raw image.  Doomed subjects alone carry
     the [doomed_prefix], so one whole-image scan settles it (live KEEP-
     records are expected to be found and are not residue). *)
  let residue_clean = Block_device.scan dev doomed_prefix = [] in
  let bytes_written = counter dstats "bytes_written" in
  let amp = float_of_int bytes_written /. float_of_int (max 1 !logical) in
  let sim_s = float_of_int sim_ns /. 1e9 in
  {
    sg_label = label;
    sg_subjects = subjects;
    sg_updates = subjects * update_rounds;
    sg_erasures = List.length erased;
    sg_deletes = List.length deleted;
    sg_window = window;
    sg_logical_bytes = !logical;
    sg_blocks_written = counter dstats "writes";
    sg_bytes_written = bytes_written;
    sg_trims = counter dstats "trims";
    sg_write_amp = amp;
    sg_ingest_mb_s =
      float_of_int !logical /. 1e6 /. (if sim_s > 0.0 then sim_s else 1.0);
    sg_sim_ms = float_of_int sim_ns /. 1e6;
    sg_batches = counter fstats "committed_batches";
    sg_batched_ops = counter fstats "batched_ops";
    sg_compactions = counter fstats "compactions";
    sg_relocations = counter fstats "compact_relocations";
    sg_segments_reclaimed = counter fstats "segments_reclaimed";
    sg_backpressure_stalls = counter fstats "backpressure_stalls";
    sg_residue_clean = residue_clean;
  }

let run ?(subjects = 10_000) ?(update_rounds = 3) ?(window = 16) () =
  let baseline =
    run_side ~label:"update_in_place" ~segmented:false ~window:1 ~subjects
      ~update_rounds
  in
  let segmented =
    run_side ~label:"segmented" ~segmented:true ~window ~subjects ~update_rounds
  in
  {
    sr_baseline = baseline;
    sr_segmented = segmented;
    sr_amp_ratio = baseline.sg_write_amp /. segmented.sg_write_amp;
    sr_ingest_ratio = segmented.sg_ingest_mb_s /. baseline.sg_ingest_mb_s;
  }

let render (r : result) =
  let module Table = Rgpdos_util.Table in
  let row (s : side) =
    [
      s.sg_label;
      string_of_int s.sg_window;
      Printf.sprintf "%.2f" (float_of_int s.sg_logical_bytes /. 1e6);
      Printf.sprintf "%.2f" (float_of_int s.sg_bytes_written /. 1e6);
      Printf.sprintf "%.2f" s.sg_write_amp;
      Printf.sprintf "%.2f" s.sg_ingest_mb_s;
      string_of_int s.sg_batches;
      string_of_int s.sg_compactions;
      string_of_int s.sg_segments_reclaimed;
      string_of_int s.sg_trims;
      (if s.sg_residue_clean then "clean" else "RESIDUE");
    ]
  in
  Table.render
    ~align:
      Table.[ Left; Right; Right; Right; Right; Right; Right; Right; Right;
              Right; Right ]
    ~header:
      [
        "side"; "win"; "logical MB"; "written MB"; "write amp"; "MB/sim-s";
        "batches"; "compactions"; "segs freed"; "trims"; "forensic";
      ]
    [ row r.sr_baseline; row r.sr_segmented ]
  ^ Printf.sprintf
      "\nwrite-amp improvement %.2fx (bar %.1fx is enforced by the report \
       validator); sustained-ingest ratio %.2fx; %d subjects, %d updates, %d \
       erasures + %d deletes per side"
      r.sr_amp_ratio 2.0 r.sr_ingest_ratio r.sr_baseline.sg_subjects
      r.sr_baseline.sg_updates r.sr_baseline.sg_erasures
      r.sr_baseline.sg_deletes
