(** Deterministic fault-injection campaign over a scripted GDPR workload.

    The campaign turns every write the PD device sees during a scripted
    workload (collect → consent flip → erasure → TTL sweep → access →
    audit persistence) into an enumerable crash point: a reference run
    with an empty {!Rgpdos_block.Block_device.Fault_plan} counts the
    write ops, then one run per ordinal [k] snapshots the device image
    right after the [k]th write, remounts the image into a fresh device,
    runs [Dbfs.fsck_repair], and checks three invariants:

    - {b residue-free}: for every subject either a live (non-erased) PD
      of theirs exists in the recovered store, or a forensic
      {!Rgpdos_block.Block_device.scan} of the raw device for their
      email finds nothing — erased/expired/uncommitted PD leaves no
      plaintext behind at any crash point;
    - {b audit}: the audit chain captured at the crash instant
      deserialises and its hash chain verifies up to the crash;
    - {b repair}: the post-repair re-check comes back clean
      ([rr_clean]).

    Alongside the crash sweep, named fault scenarios exercise the
    self-healing paths directly: record-extent bit rot, secondary-index
    damage, bit rot inside an on-device paged index node (cold remount
    must hit the page checksum, repair must rebuild the trees with no
    residue of the damaged page), transient-fault retry, torn-write
    retry, and degraded read-only mode (mutations refused, right of
    access still served).

    Determinism rule: the same seed and the same workload replay the
    exact same schedule and produce the same verdicts — {!to_json}
    output is byte-identical across runs modulo the optional wall-clock
    field. *)

type crash_verdict = {
  cp_write : int;          (** crash point: the write-op ordinal crashed after *)
  cp_step : string;        (** workload step the write belonged to *)
  cp_plan : string;        (** active fault plan, rendered at install time —
                               counterexamples are diagnosable without
                               re-running the campaign *)
  cp_replay_stop : string; (** mount-time journal replay stop reason *)
  cp_quarantined : int;    (** pds fsck_repair had to quarantine *)
  cp_residue_free : bool;  (** invariant 1 *)
  cp_audit_ok : bool;      (** invariant 2 *)
  cp_fsck_clean : bool;    (** invariant 3 *)
}

type scenario_verdict = {
  sc_name : string;
  sc_pass : bool;
  sc_detail : string;
}

type result = {
  fc_seed : int;
  fc_subjects : int;
  fc_steps : (string * int) list;
      (** workload steps with cumulative write count at each step's end *)
  fc_total_writes : int;   (** write ops in the fault-free reference run *)
  fc_sampled : bool;       (** true when [max_points] skipped some ordinals *)
  fc_points : crash_verdict list;
  fc_scenarios : scenario_verdict list;
}

val run : ?seed:int -> ?subjects:int -> ?max_points:int -> unit -> result
(** Run the campaign.  Defaults: seed 7, 6 subjects (minimum 4; the last
    two are collected after the TTL jump so the sweep has both expired
    and live entries), every crash point.  [max_points] evenly samples
    the ordinal space when the workload writes more than that. *)

val pass_rate_pct : result -> float
(** Percentage of passed invariant checks over the crash sweep
    (3 invariants x points); 100.0 means every invariant held at every
    crash point. *)

val all_pass : result -> bool
(** [pass_rate_pct = 100.0] and every scenario passed. *)

val to_json : ?wall_ms:float -> result -> Rgpdos_util.Json.t
(** Machine-readable campaign report (the [BENCH_fault_campaign.json]
    payload).  Deterministic for a given seed; [wall_ms] is the only
    non-deterministic field and is omitted unless given. *)

val render : result -> string
(** Human-readable summary table. *)
