(** A/B benchmark for the log-structured segment store (experiment
    E-segment).

    Runs the same ingest → churn → GDPR-slice workload twice on one
    build: once against the seed update-in-place allocator (journal
    window 1, synchronous zeroing) and once against the segmented store
    (group commit, bump allocation, compaction + trim).  Both runs use
    identical simulated devices and virtual clocks, so every delta in
    the report is attributable to the storage layout. *)

(** Per-side measurements. *)
type side = {
  sg_label : string;
  sg_subjects : int;
  sg_updates : int;
  sg_erasures : int;
  sg_deletes : int;
  sg_window : int;  (** group-commit window used *)
  sg_logical_bytes : int;
      (** encoded record + membrane bytes handed to the store *)
  sg_blocks_written : int;
  sg_bytes_written : int;
  sg_trims : int;
  sg_write_amp : float;  (** bytes_written / logical_bytes *)
  sg_ingest_mb_s : float;  (** logical MB per simulated second *)
  sg_sim_ms : float;
  sg_batches : int;
  sg_batched_ops : int;
  sg_compactions : int;
  sg_relocations : int;
  sg_segments_reclaimed : int;
  sg_backpressure_stalls : int;
  sg_residue_clean : bool;
      (** no marker of an erased/deleted record found by
          {!Rgpdos_block.Block_device.scan} over the raw image *)
}

type result = {
  sr_baseline : side;
  sr_segmented : side;
  sr_amp_ratio : float;
      (** baseline write-amp / segmented write-amp — the headline number;
          the committed artifact gates it at [>= 2.0] *)
  sr_ingest_ratio : float;
      (** segmented sustained ingest / baseline sustained ingest *)
}

val run : ?subjects:int -> ?update_rounds:int -> ?window:int -> unit -> result
(** Defaults: 10_000 subjects, 3 update rounds per subject (so 4 versions
    of every record exist over the run), group-commit window 16 on the
    segmented side. *)

val render : result -> string
(** Human-readable A/B table for the bench harness. *)
