module Json = Rgpdos_util.Json

type micro_row = { name : string; ns_per_op : float; r2 : float }

let schema_id = "rgpdos-bench-hotpath/1"

let micro_json rows =
  Json.List
    (List.map
       (fun { name; ns_per_op; r2 } ->
         Json.Obj
           [
             ("name", Json.Str name);
             ("ns_per_op", Json.Num ns_per_op);
             ("r2", Json.Num r2);
           ])
       rows)

let e1_json (r : Experiments.e1_result) wall_ms =
  Json.Obj
    [
      ("subjects", Json.Num (float_of_int r.Experiments.e1_subjects));
      ( "stage_ns",
        Json.Obj
          (List.map
             (fun (stage, ns) -> (stage, Json.Num (float_of_int ns)))
             r.Experiments.e1_stage_ns) );
      ("total_sim_ns", Json.Num (float_of_int r.Experiments.e1_total_ns));
      ("wall_ms", Json.Num wall_ms);
    ]

let e4_json (rows : Experiments.e4_row list) wall_ms =
  Json.Obj
    [
      ( "rows",
        Json.List
          (List.map
             (fun (row : Experiments.e4_row) ->
               Json.Obj
                 [
                   ( "records_per_subject",
                     Json.Num (float_of_int row.Experiments.e4_records_per_subject)
                   );
                   ("sim_us", Json.Num row.Experiments.e4_sim_us);
                   ( "export_complete",
                     Json.Bool row.Experiments.e4_export_complete );
                 ])
             rows) );
      ("wall_ms", Json.Num wall_ms);
    ]

let make ~quick ~micro ?e1 ?e4 () =
  let opt key f = function Some v -> [ (key, f v) ] | None -> [] in
  Json.Obj
    ([
       ("schema", Json.Str schema_id);
       ("quick", Json.Bool quick);
       ("micro", micro_json micro);
     ]
    @ opt "e1" (fun (r, w) -> e1_json r w) e1
    @ opt "e4" (fun (r, w) -> e4_json r w) e4)

(* ---------- validation ---------- *)

let ( let* ) = Result.bind

let require msg = function Some v -> Ok v | None -> Error msg

let check_micro v =
  let* rows = require "micro: not a list" (Json.to_list v) in
  if rows = [] then Error "micro: empty"
  else
    let* named =
      List.fold_left
        (fun acc row ->
          let* acc = acc in
          let* name =
            require "micro row: missing name"
              (Option.bind (Json.member "name" row) Json.to_str)
          in
          let* ns =
            require (name ^ ": missing ns_per_op")
              (Option.bind (Json.member "ns_per_op" row) Json.to_float)
          in
          if ns <= 0.0 || Float.is_nan ns then
            Error (name ^ ": non-positive ns_per_op")
          else Ok (name :: acc))
        (Ok []) rows
    in
    let has suffix =
      List.exists
        (fun n ->
          String.length n >= String.length suffix
          && String.sub n
               (String.length n - String.length suffix)
               (String.length suffix)
             = suffix)
        named
    in
    let missing =
      List.filter
        (fun s -> not (has s))
        [ "sha256/1KiB"; "chacha20/1KiB"; "audit/append" ]
    in
    if missing <> [] then
      Error ("micro: missing hot-path rows: " ^ String.concat ", " missing)
    else Ok ()

let check_e1 v =
  let* _ =
    require "e1: missing total_sim_ns"
      (Option.bind (Json.member "total_sim_ns" v) Json.to_float)
  in
  let* stages =
    require "e1: missing stage_ns"
      (match Json.member "stage_ns" v with
      | Some (Json.Obj kvs) -> Some kvs
      | _ -> None)
  in
  if stages = [] then Error "e1: empty stage_ns" else Ok ()

let check_e4 v =
  let* rows =
    require "e4: missing rows"
      (Option.bind (Json.member "rows" v) Json.to_list)
  in
  if rows = [] then Error "e4: empty rows"
  else
    List.fold_left
      (fun acc row ->
        let* () = acc in
        let* _ =
          require "e4 row: missing sim_us"
            (Option.bind (Json.member "sim_us" row) Json.to_float)
        in
        Ok ())
      (Ok ()) rows

let validate v =
  let* schema =
    require "missing schema key"
      (Option.bind (Json.member "schema" v) Json.to_str)
  in
  if schema <> schema_id then Error ("unexpected schema id " ^ schema)
  else
    let* micro = require "missing micro section" (Json.member "micro" v) in
    let* () = check_micro micro in
    let* () =
      match Json.member "e1" v with Some e1 -> check_e1 e1 | None -> Ok ()
    in
    match Json.member "e4" v with Some e4 -> check_e4 e4 | None -> Ok ()

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string v))
