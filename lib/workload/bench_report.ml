module Json = Rgpdos_util.Json

type micro_row = { name : string; ns_per_op : float; r2 : float }

let schema_id = "rgpdos-bench-hotpath/1"

let micro_json rows =
  Json.List
    (List.map
       (fun { name; ns_per_op; r2 } ->
         Json.Obj
           [
             ("name", Json.Str name);
             ("ns_per_op", Json.Num ns_per_op);
             ("r2", Json.Num r2);
           ])
       rows)

let device_json counters =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) counters)

(* merge ratio: per-block reads per seek actually charged — the vectored
   path's whole point is pushing this far above 1.0 *)
let merge_ratio counters =
  let get k = match List.assoc_opt k counters with Some v -> v | None -> 0 in
  let runs = get "merged_runs" in
  if runs = 0 then 1.0 else float_of_int (get "reads") /. float_of_int runs

let e1_json (r : Experiments.e1_result) wall_ms =
  Json.Obj
    [
      ("subjects", Json.Num (float_of_int r.Experiments.e1_subjects));
      ( "stage_ns",
        Json.Obj
          (List.map
             (fun (stage, ns) -> (stage, Json.Num (float_of_int ns)))
             r.Experiments.e1_stage_ns) );
      ("total_sim_ns", Json.Num (float_of_int r.Experiments.e1_total_ns));
      ("device", device_json r.Experiments.e1_device);
      ("merge_ratio", Json.Num (merge_ratio r.Experiments.e1_device));
      ("wall_ms", Json.Num wall_ms);
    ]

let e4_json (rows : Experiments.e4_row list) wall_ms =
  Json.Obj
    [
      ( "rows",
        Json.List
          (List.map
             (fun (row : Experiments.e4_row) ->
               Json.Obj
                 [
                   ( "records_per_subject",
                     Json.Num (float_of_int row.Experiments.e4_records_per_subject)
                   );
                   ("sim_us", Json.Num row.Experiments.e4_sim_us);
                   ( "export_complete",
                     Json.Bool row.Experiments.e4_export_complete );
                 ])
             rows) );
      ("wall_ms", Json.Num wall_ms);
    ]

let make ~quick ~micro ?e1 ?e4 () =
  let opt key f = function Some v -> [ (key, f v) ] | None -> [] in
  Json.Obj
    ([
       ("schema", Json.Str schema_id);
       ("quick", Json.Bool quick);
       ("micro", micro_json micro);
     ]
    @ opt "e1" (fun (r, w) -> e1_json r w) e1
    @ opt "e4" (fun (r, w) -> e4_json r w) e4)

(* ---------- validation ---------- *)

let ( let* ) = Result.bind

let require msg = function Some v -> Ok v | None -> Error msg

let check_micro v =
  let* rows = require "micro: not a list" (Json.to_list v) in
  if rows = [] then Error "micro: empty"
  else
    let* named =
      List.fold_left
        (fun acc row ->
          let* acc = acc in
          let* name =
            require "micro row: missing name"
              (Option.bind (Json.member "name" row) Json.to_str)
          in
          let* ns =
            require (name ^ ": missing ns_per_op")
              (Option.bind (Json.member "ns_per_op" row) Json.to_float)
          in
          if ns <= 0.0 || Float.is_nan ns then
            Error (name ^ ": non-positive ns_per_op")
          else Ok (name :: acc))
        (Ok []) rows
    in
    let has suffix =
      List.exists
        (fun n ->
          String.length n >= String.length suffix
          && String.sub n
               (String.length n - String.length suffix)
               (String.length suffix)
             = suffix)
        named
    in
    let missing =
      List.filter
        (fun s -> not (has s))
        [ "sha256/1KiB"; "chacha20/1KiB"; "audit/append" ]
    in
    if missing <> [] then
      Error ("micro: missing hot-path rows: " ^ String.concat ", " missing)
    else Ok ()

let check_e1 v =
  let* _ =
    require "e1: missing total_sim_ns"
      (Option.bind (Json.member "total_sim_ns" v) Json.to_float)
  in
  let* stages =
    require "e1: missing stage_ns"
      (match Json.member "stage_ns" v with
      | Some (Json.Obj kvs) -> Some kvs
      | _ -> None)
  in
  if stages = [] then Error "e1: empty stage_ns" else Ok ()

let check_e4 v =
  let* rows =
    require "e4: missing rows"
      (Option.bind (Json.member "rows" v) Json.to_list)
  in
  if rows = [] then Error "e4: empty rows"
  else
    List.fold_left
      (fun acc row ->
        let* () = acc in
        let* _ =
          require "e4 row: missing sim_us"
            (Option.bind (Json.member "sim_us" row) Json.to_float)
        in
        Ok ())
      (Ok ()) rows

let validate v =
  let* schema =
    require "missing schema key"
      (Option.bind (Json.member "schema" v) Json.to_str)
  in
  if schema <> schema_id then Error ("unexpected schema id " ^ schema)
  else
    let* micro = require "missing micro section" (Json.member "micro" v) in
    let* () = check_micro micro in
    let* () =
      match Json.member "e1" v with Some e1 -> check_e1 e1 | None -> Ok ()
    in
    match Json.member "e4" v with Some e4 -> check_e4 e4 | None -> Ok ()

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string v))

let read_file path =
  let ic = open_in_bin path in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Result.to_option (Json.of_string raw)

(* ---------- vectored-IO artifact ---------- *)

let vectored_schema_id = "rgpdos-bench-vectored-io/1"

let stage_of r name =
  match List.assoc_opt name r.Experiments.e1_stage_ns with
  | Some ns -> ns
  | None -> 0

let pct_reduction ~before ~after =
  if before <= 0.0 then 0.0 else 100.0 *. (before -. after) /. before

(* The committed before/after evidence for the vectored path: the same E1
   population and scale run twice on the same build — once with the
   device's scalar cost model (one seek per block), once with run-merging
   vectored charging — plus a per-subject comparison against the earlier
   committed hotpath artifact, whose E1 ran at a smaller scale. *)
let make_vectored ~scalar ~scalar_wall_ms ~vectored ~vectored_wall_ms
    ?baseline () =
  let load_stages = [ "ded_load_membrane"; "ded_load_data" ] in
  let loads r =
    List.fold_left (fun acc s -> acc + stage_of r s) 0 load_stages
  in
  let reductions =
    List.map
      (fun s ->
        ( s,
          Json.Num
            (pct_reduction
               ~before:(float_of_int (stage_of scalar s))
               ~after:(float_of_int (stage_of vectored s))) ))
      load_stages
    @ [
        ( "load_stages_combined",
          Json.Num
            (pct_reduction
               ~before:(float_of_int (loads scalar))
               ~after:(float_of_int (loads vectored))) );
        ( "total",
          Json.Num
            (pct_reduction
               ~before:(float_of_int scalar.Experiments.e1_total_ns)
               ~after:(float_of_int vectored.Experiments.e1_total_ns)) );
      ]
  in
  let baseline_section =
    match baseline with
    | None -> []
    | Some b ->
        (* normalise per subject: the hotpath artifact's E1 ran at a
           different scale than this one *)
        let b_subjects =
          match
            Option.bind (Json.member "e1" b) (fun e1 ->
                Option.bind (Json.member "subjects" e1) Json.to_float)
          with
          | Some n when n > 0.0 -> n
          | _ -> 1.0
        in
        let b_stage name =
          match
            Option.bind (Json.member "e1" b) (fun e1 ->
                Option.bind (Json.member "stage_ns" e1) (fun stages ->
                    Option.bind (Json.member name stages) Json.to_float))
          with
          | Some ns -> ns
          | None -> 0.0
        in
        let v_subjects = float_of_int vectored.Experiments.e1_subjects in
        let per_subject_reductions =
          List.map
            (fun s ->
              ( s,
                Json.Num
                  (pct_reduction
                     ~before:(b_stage s /. b_subjects)
                     ~after:(float_of_int (stage_of vectored s) /. v_subjects))
              ))
            load_stages
          @ [
              ( "load_stages_combined",
                Json.Num
                  (pct_reduction
                     ~before:
                       (List.fold_left
                          (fun acc s -> acc +. b_stage s)
                          0.0 load_stages
                       /. b_subjects)
                     ~after:(float_of_int (loads vectored) /. v_subjects)) );
            ]
        in
        [
          ( "baseline",
            Json.Obj
              [
                ("source", Json.Str "BENCH_hotpath.json");
                ("subjects", Json.Num b_subjects);
                ( "load_ns_per_subject",
                  Json.Obj
                    (List.map
                       (fun s -> (s, Json.Num (b_stage s /. b_subjects)))
                       load_stages) );
                ("reduction_per_subject_pct", Json.Obj per_subject_reductions);
              ] );
        ]
  in
  Json.Obj
    ([
       ("schema", Json.Str vectored_schema_id);
       ("scalar", e1_json scalar scalar_wall_ms);
       ("vectored", e1_json vectored vectored_wall_ms);
       ("reduction_pct", Json.Obj reductions);
     ]
    @ baseline_section)

let validate_vectored v =
  let* schema =
    require "missing schema key"
      (Option.bind (Json.member "schema" v) Json.to_str)
  in
  if schema <> vectored_schema_id then Error ("unexpected schema id " ^ schema)
  else
    let* scalar = require "missing scalar section" (Json.member "scalar" v) in
    let* () = check_e1 scalar in
    let* vectored =
      require "missing vectored section" (Json.member "vectored" v)
    in
    let* () = check_e1 vectored in
    let* reductions =
      require "missing reduction_pct" (Json.member "reduction_pct" v)
    in
    let red name =
      require
        ("reduction_pct: missing " ^ name)
        (Option.bind (Json.member name reductions) Json.to_float)
    in
    let* membrane = red "ded_load_membrane" in
    let* data = red "ded_load_data" in
    let* combined = red "load_stages_combined" in
    if membrane < 30.0 || data < 30.0 || combined < 30.0 then
      Error
        (Printf.sprintf
           "load-stage reduction below the 30%% bar: membrane %.1f%%, data \
            %.1f%%, combined %.1f%%"
           membrane data combined)
    else Ok ()

(* ---------- regression comparison (bench --compare) ---------- *)

(* Compare a freshly measured E1 against the E1 section of a previously
   committed report.  Stage times are normalised per subject (the two runs
   may be at different scales) and a stage only counts as regressed when
   it is both >25% slower AND at least [epsilon_ns] absolute per subject
   slower — the fixed-cost stages (ded_type2req at 1000 ns, ded_return at
   200 ns) would otherwise trip the percentage gate on constant-cost noise
   at different scales. *)
let regression_threshold_pct = 25.0

let epsilon_ns_per_subject = 50.0

let compare_e1 ~old_report (current : Experiments.e1_result) =
  match Json.member "e1" old_report with
  | None -> Error [ "old report has no e1 section" ]
  | Some old_e1 ->
      let old_subjects =
        match
          Option.bind (Json.member "subjects" old_e1) Json.to_float
        with
        | Some n when n > 0.0 -> n
        | _ -> 1.0
      in
      let old_stages =
        match Json.member "stage_ns" old_e1 with
        | Some (Json.Obj kvs) ->
            List.filter_map
              (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v))
              kvs
        | _ -> []
      in
      let cur_subjects = float_of_int current.Experiments.e1_subjects in
      let regressions =
        List.filter_map
          (fun (stage, old_ns) ->
            match List.assoc_opt stage current.Experiments.e1_stage_ns with
            | None -> Some (stage ^ ": stage disappeared from E1")
            | Some cur_ns ->
                let old_ps = old_ns /. old_subjects in
                let cur_ps = float_of_int cur_ns /. cur_subjects in
                if
                  cur_ps > old_ps *. (1.0 +. (regression_threshold_pct /. 100.0))
                  && cur_ps -. old_ps > epsilon_ns_per_subject
                then
                  Some
                    (Printf.sprintf
                       "%s: %.1f ns/subject -> %.1f ns/subject (+%.1f%%)"
                       stage old_ps cur_ps
                       (100.0 *. ((cur_ps /. old_ps) -. 1.0)))
                else None)
          old_stages
      in
      if regressions = [] then Ok (List.length old_stages) else Error regressions

(* ---------- parallel-scale artifact ---------- *)

let scale_schema_id = "rgpdos-bench-parallel-scale/1"

type scale_row = {
  domains : int;
  sim_critical_ns : int;
  sim_total_ns : int;
  kops_per_sim_s : float;
  wall_s : float;
  speedup : float;
}

let speedup_bar = 2.5

let scale_row_of_report ~baseline (r : Shard_bench.report) =
  {
    domains = r.Shard_bench.shards;
    sim_critical_ns = r.Shard_bench.sim_critical_ns;
    sim_total_ns = r.Shard_bench.sim_total_ns;
    kops_per_sim_s = r.Shard_bench.kops_per_sim_s;
    wall_s = r.Shard_bench.wall_seconds;
    speedup = Shard_bench.speedup ~baseline r;
  }

let make_scale ~role ~subjects ~total_ops ~rows ~e1_seq ~e1_par ~e1_cores () =
  let exec r = stage_of r "ded_execute" in
  Json.Obj
    [
      ("schema", Json.Str scale_schema_id);
      ("role", Json.Str role);
      ("subjects", Json.Num (float_of_int subjects));
      ("total_ops", Json.Num (float_of_int total_ops));
      ( "scale",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 [
                   ("domains", Json.Num (float_of_int row.domains));
                   ( "sim_critical_ns",
                     Json.Num (float_of_int row.sim_critical_ns) );
                   ("sim_total_ns", Json.Num (float_of_int row.sim_total_ns));
                   ("kops_per_sim_s", Json.Num row.kops_per_sim_s);
                   ("wall_s", Json.Num row.wall_s);
                   ("speedup", Json.Num row.speedup);
                 ])
             rows) );
      ( "e1_ded_execute",
        Json.Obj
          [
            ( "subjects",
              Json.Num (float_of_int e1_par.Experiments.e1_subjects) );
            ("cores", Json.Num (float_of_int e1_cores));
            ("sequential_ns", Json.Num (float_of_int (exec e1_seq)));
            ("parallel_ns", Json.Num (float_of_int (exec e1_par)));
            ( "reduction_pct",
              Json.Num
                (pct_reduction
                   ~before:(float_of_int (exec e1_seq))
                   ~after:(float_of_int (exec e1_par))) );
          ] );
    ]

let scale_speedup_at v domains =
  match Option.bind (Json.member "scale" v) Json.to_list with
  | None -> None
  | Some rows ->
      List.find_map
        (fun row ->
          match
            ( Option.bind (Json.member "domains" row) Json.to_float,
              Option.bind (Json.member "speedup" row) Json.to_float )
          with
          | Some d, Some s when int_of_float d = domains -> Some s
          | _ -> None)
        rows

let validate_scale v =
  let* schema =
    require "missing schema key"
      (Option.bind (Json.member "schema" v) Json.to_str)
  in
  if schema <> scale_schema_id then Error ("unexpected schema id " ^ schema)
  else
    let* rows =
      require "missing scale section"
        (Option.bind (Json.member "scale" v) Json.to_list)
    in
    if rows = [] then Error "scale: empty"
    else
      let* () =
        List.fold_left
          (fun acc row ->
            let* () = acc in
            let* d =
              require "scale row: missing domains"
                (Option.bind (Json.member "domains" row) Json.to_float)
            in
            let* c =
              require "scale row: missing sim_critical_ns"
                (Option.bind (Json.member "sim_critical_ns" row) Json.to_float)
            in
            if d < 1.0 || c <= 0.0 then
              Error "scale row: non-positive domains or sim_critical_ns"
            else Ok ())
          (Ok ()) rows
      in
      let* s4 =
        require "scale: no 4-domain row" (scale_speedup_at v 4)
      in
      if s4 < speedup_bar then
        Error
          (Printf.sprintf "4-domain speedup %.2fx below the %.1fx bar" s4
             speedup_bar)
      else
        let* e1 =
          require "missing e1_ded_execute section"
            (Json.member "e1_ded_execute" v)
        in
        let* reduction =
          require "e1_ded_execute: missing reduction_pct"
            (Option.bind (Json.member "reduction_pct" e1) Json.to_float)
        in
        if reduction <= 0.0 then
          Error
            (Printf.sprintf
               "parallel ded_execute shows no reduction (%.1f%%)" reduction)
        else Ok ()

(* ---------- sibling-artifact regression gates (bench --compare) ---------- *)

let compare_vectored ~old_report ~subjects ~merge_ratio =
  (* the merge ratio grows with the dataset (a bigger table is a longer
     contiguous extent), so the gate compares blocks-per-seek *per
     subject* — scale-invariant between a --quick CI run and the
     full-scale committed artifact *)
  let field name =
    Option.bind (Json.member "vectored" old_report) (fun v ->
        Option.bind (Json.member name v) Json.to_float)
  in
  match (field "merge_ratio", field "subjects") with
  | None, _ -> Error "old vectored report has no vectored.merge_ratio"
  | _, (None | Some 0.) -> Error "old vectored report has no vectored.subjects"
  | Some old_ratio, Some old_subjects ->
      let old_norm = old_ratio /. old_subjects in
      let current_norm = merge_ratio /. float_of_int (max subjects 1) in
      let floor = old_norm *. (1.0 -. (regression_threshold_pct /. 100.0)) in
      if current_norm < floor then
        Error
          (Printf.sprintf
             "merge ratio regressed: %.4f -> %.4f blocks/seek per subject \
              (floor %.4f = committed -%.0f%%)"
             old_norm current_norm floor regression_threshold_pct)
      else Ok old_ratio

(* ---------- index-select artifact ---------- *)

let index_schema_id = "rgpdos-bench-index-select/1"

(* acceptance bars: pushdown must beat the full scan by >= 10x on the 1%
   Eq probe at 2000+ subjects, and the expiry-queue sweep must beat the
   full membrane scan by >= 2x at the largest aged population *)
let index_speedup_bar = 10.0

let ttl_speedup_bar = 2.0

let make_index ~(result : Experiments.eidx_result) ~wall_ms =
  Json.Obj
    [
      ("schema", Json.Str index_schema_id);
      ( "select",
        Json.List
          (List.map
             (fun (row : Experiments.eidx_select_row) ->
               Json.Obj
                 [
                   ( "population",
                     Json.Num (float_of_int row.Experiments.eidx_population) );
                   ("probe", Json.Str row.Experiments.eidx_probe);
                   ( "selectivity_pct",
                     Json.Num row.Experiments.eidx_selectivity_pct );
                   ( "matches",
                     Json.Num (float_of_int row.Experiments.eidx_matches) );
                   ( "scan_sim_ns",
                     Json.Num (float_of_int row.Experiments.eidx_scan_ns) );
                   ( "index_sim_ns",
                     Json.Num (float_of_int row.Experiments.eidx_index_ns) );
                   ("speedup", Json.Num row.Experiments.eidx_speedup);
                 ])
             result.Experiments.eidx_select) );
      ( "ttl",
        Json.List
          (List.map
             (fun (row : Experiments.eidx_ttl_row) ->
               Json.Obj
                 [
                   ( "population",
                     Json.Num (float_of_int row.Experiments.eidx_ttl_population)
                   );
                   ( "expired",
                     Json.Num (float_of_int row.Experiments.eidx_ttl_expired) );
                   ( "full_sim_ns",
                     Json.Num (float_of_int row.Experiments.eidx_ttl_full_ns) );
                   ( "incremental_sim_ns",
                     Json.Num (float_of_int row.Experiments.eidx_ttl_incr_ns) );
                   ("speedup", Json.Num row.Experiments.eidx_ttl_speedup);
                 ])
             result.Experiments.eidx_ttl) );
      ("wall_ms", Json.Num wall_ms);
    ]

(* the gated select row: the 1%-selectivity Eq probe at the smallest
   population >= 2000 — the headline configuration both the quick smoke
   run and the full-scale committed artifact include, so the gate
   compares like against like (the speedup itself grows with the
   population: scan cost is O(n), probe cost is O(matches)) *)
let index_gate_row v =
  match Option.bind (Json.member "select" v) Json.to_list with
  | None -> None
  | Some rows ->
      List.fold_left
        (fun best row ->
          match
            ( Option.bind (Json.member "selectivity_pct" row) Json.to_float,
              Option.bind (Json.member "population" row) Json.to_float,
              Option.bind (Json.member "speedup" row) Json.to_float )
          with
          | Some sel, Some pop, Some speedup
            when sel = 1.0 && pop >= 2_000.0 -> (
              match best with
              | Some (bp, _) when bp <= pop -> best
              | _ -> Some (pop, speedup))
          | _ -> best)
        None rows

let index_ttl_gate_row v =
  match Option.bind (Json.member "ttl" v) Json.to_list with
  | None -> None
  | Some rows ->
      List.fold_left
        (fun best row ->
          match
            ( Option.bind (Json.member "population" row) Json.to_float,
              Option.bind (Json.member "speedup" row) Json.to_float )
          with
          | Some pop, Some speedup -> (
              match best with
              | Some (bp, _) when bp >= pop -> best
              | _ -> Some (pop, speedup))
          | _ -> best)
        None rows

let validate_index v =
  let* schema =
    require "missing schema key"
      (Option.bind (Json.member "schema" v) Json.to_str)
  in
  if schema <> index_schema_id then Error ("unexpected schema id " ^ schema)
  else
    let* rows =
      require "missing select section"
        (Option.bind (Json.member "select" v) Json.to_list)
    in
    if rows = [] then Error "select: empty"
    else
      let* () =
        List.fold_left
          (fun acc row ->
            let* () = acc in
            let* scan =
              require "select row: missing scan_sim_ns"
                (Option.bind (Json.member "scan_sim_ns" row) Json.to_float)
            in
            let* index =
              require "select row: missing index_sim_ns"
                (Option.bind (Json.member "index_sim_ns" row) Json.to_float)
            in
            if scan < 0.0 || index < 0.0 then
              Error "select row: negative simulated time"
            else Ok ())
          (Ok ()) rows
      in
      let* _, speedup =
        require "select: no 1%-selectivity row at population >= 2000"
          (index_gate_row v)
      in
      if speedup < index_speedup_bar then
        Error
          (Printf.sprintf
             "1%%-selectivity pushdown speedup %.1fx below the %.0fx bar"
             speedup index_speedup_bar)
      else
        let* _, ttl_speedup =
          require "ttl: empty section" (index_ttl_gate_row v)
        in
        if ttl_speedup < ttl_speedup_bar then
          Error
            (Printf.sprintf
               "incremental TTL sweep speedup %.1fx below the %.1fx bar"
               ttl_speedup ttl_speedup_bar)
        else Ok ()

let compare_index ~old_report ~speedup1pct:current =
  match index_gate_row old_report with
  | None -> Error "old index report has no 1%-selectivity row at >= 2000"
  | Some (_, old_speedup) ->
      let floor = old_speedup *. (1.0 -. (regression_threshold_pct /. 100.0)) in
      if current < floor then
        Error
          (Printf.sprintf
             "1%%-selectivity pushdown speedup regressed: %.1fx -> %.1fx \
              (floor %.1fx = committed -%.0f%%)"
             old_speedup current floor regression_threshold_pct)
      else Ok old_speedup

let compare_scale ~old_report ~speedup4:current =
  match scale_speedup_at old_report 4 with
  | None -> Error "old scale report has no 4-domain row"
  | Some old_speedup ->
      let floor = old_speedup *. (1.0 -. (regression_threshold_pct /. 100.0)) in
      if current < floor then
        Error
          (Printf.sprintf
             "4-domain speedup regressed: %.2fx -> %.2fx (floor %.2fx = \
              committed -%.0f%%)"
             old_speedup current floor regression_threshold_pct)
      else Ok old_speedup

(* ---------- fault-campaign artifact ---------- *)

let fault_schema_id = "rgpdos-fault-campaign/1"

(* the robustness artifact's bar is absolute, not a regression threshold:
   every invariant must hold at every crash point and every scenario must
   pass *)
let fault_pass_bar = 100.0

let make_fault ~(result : Fault_campaign.result) ?wall_ms () =
  Fault_campaign.to_json ?wall_ms result

let validate_fault v =
  let* schema =
    require "missing schema key"
      (Option.bind (Json.member "schema" v) Json.to_str)
  in
  if schema <> fault_schema_id then Error ("unexpected schema id " ^ schema)
  else
    let* total =
      require "missing total_writes"
        (Option.bind (Json.member "total_writes" v) Json.to_float)
    in
    let* points =
      require "missing points section"
        (Option.bind (Json.member "points" v) Json.to_list)
    in
    let* sampled =
      require "missing sampled flag"
        (match Json.member "sampled" v with
        | Some (Json.Bool b) -> Some b
        | _ -> None)
    in
    if total <= 0.0 then Error "total_writes must be positive"
    else if points = [] then Error "points: empty"
    else
      let* ordinals =
        List.fold_left
          (fun acc row ->
            let* acc = acc in
            let* w =
              require "point: missing write ordinal"
                (Option.bind (Json.member "write" row) Json.to_float)
            in
            let* () =
              List.fold_left
                (fun acc key ->
                  let* () = acc in
                  match Json.member key row with
                  | Some (Json.Bool _) -> Ok ()
                  | _ -> Error ("point: missing " ^ key))
                (Ok ())
                [ "residue_free"; "audit_ok"; "fsck_clean" ]
            in
            Ok (int_of_float w :: acc))
          (Ok []) points
      in
      let* () =
        if sampled then Ok ()
        else
          (* exhaustive claim: every write ordinal 1..total crashed once *)
          let expected = List.init (int_of_float total) (fun i -> i + 1) in
          if List.sort_uniq compare ordinals = expected then Ok ()
          else
            Error
              (Printf.sprintf
                 "campaign claims exhaustive but covers %d of %.0f crash \
                  points"
                 (List.length (List.sort_uniq compare ordinals))
                 total)
      in
      let* rate =
        require "missing pass_rate_pct"
          (Option.bind (Json.member "pass_rate_pct" v) Json.to_float)
      in
      if rate < fault_pass_bar then
        Error
          (Printf.sprintf "invariant pass rate %.1f%% below the %.0f%% bar"
             rate fault_pass_bar)
      else
        let* scenarios =
          require "missing scenarios section"
            (Option.bind (Json.member "scenarios" v) Json.to_list)
        in
        if scenarios = [] then Error "scenarios: empty"
        else
          List.fold_left
            (fun acc row ->
              let* () = acc in
              let name =
                match Option.bind (Json.member "name" row) Json.to_str with
                | Some n -> n
                | None -> "?"
              in
              match Json.member "pass" row with
              | Some (Json.Bool true) -> Ok ()
              | Some (Json.Bool false) ->
                  Error ("scenario failed: " ^ name)
              | _ -> Error ("scenario " ^ name ^ ": missing pass flag")
            )
            (Ok ()) scenarios

let compare_fault ~old_report ~pass_rate_pct:current =
  match Option.bind (Json.member "pass_rate_pct" old_report) Json.to_float with
  | None -> Error "old fault report has no pass_rate_pct"
  | Some old_rate ->
      if old_rate < fault_pass_bar then
        Error
          (Printf.sprintf
             "committed fault campaign pass rate %.1f%% is below 100%%"
             old_rate)
      else if current < fault_pass_bar then
        Error
          (Printf.sprintf
             "fault campaign invariant pass rate dropped to %.1f%% (bar: \
              every invariant at every crash point)"
             current)
      else Ok old_rate

(* ---------- model-refinement artifact ---------- *)

let model_schema_id = "rgpdos-model-check/1"

(* refinement is absolute: the executable model IS the GDPR semantics,
   and any divergence is a bug on one side or the other — there is no
   acceptable "small regression" in meaning *)
let model_conformance_bar = 100.0

let make_model ~(result : Rgpdos_model.Refine.report) ?wall_ms () =
  Rgpdos_model.Refine.to_json ?wall_ms result

let validate_model v =
  let* schema =
    require "missing schema key"
      (Option.bind (Json.member "schema" v) Json.to_str)
  in
  if schema <> model_schema_id then Error ("unexpected schema id " ^ schema)
  else
    let pos key =
      let* n =
        require ("missing " ^ key)
          (Option.bind (Json.member key v) Json.to_float)
      in
      if n <= 0.0 then Error (key ^ " must be positive") else Ok n
    in
    let* _ = pos "scripts" in
    let* _ = pos "ops_checked" in
    let* _ = pos "fault_points" in
    let* crash_runs = pos "crash_runs" in
    let* configs = pos "crash_configs" in
    let expected_configs = List.length Rgpdos_model.Refine.all_cfgs in
    if int_of_float configs <> expected_configs then
      Error
        (Printf.sprintf "crash_configs %.0f does not cover the %d-config matrix"
           configs expected_configs)
    else if crash_runs < configs then
      Error "fewer crash runs than crash configs"
    else
      let int_list key =
        let* l =
          require ("missing " ^ key)
            (Option.bind (Json.member key v) Json.to_list)
        in
        Ok (List.map int_of_float (List.filter_map Json.to_float l))
      in
      let* domains = int_list "lin_domains" in
      if domains <> [ 1; 2; 4 ] then
        Error "lin_domains must cover 1/2/4 domains"
      else
        let* budgets = int_list "cache_budgets" in
        if budgets <> Rgpdos_model.Refine.budgets then
          Error "cache_budgets do not match the coherence audit's"
        else
          let* rate =
            require "missing conformance_pct"
              (Option.bind (Json.member "conformance_pct" v) Json.to_float)
          in
          if rate < model_conformance_bar then
            Error
              (Printf.sprintf "conformance %.2f%% below the %.0f%% bar" rate
                 model_conformance_bar)
          else
            let* failures =
              require "missing failures section"
                (Option.bind (Json.member "failures" v) Json.to_list)
            in
            match failures with
            | [] -> (
                match Json.member "all_pass" v with
                | Some (Json.Bool true) -> Ok ()
                | _ -> Error "all_pass must be true")
            | f :: _ ->
                let detail =
                  match Option.bind (Json.member "detail" f) Json.to_str with
                  | Some d -> d
                  | None -> "?"
                in
                Error ("refinement counterexample recorded: " ^ detail)

let compare_model ~old_report ~conformance_pct:current =
  match
    Option.bind (Json.member "conformance_pct" old_report) Json.to_float
  with
  | None -> Error "old model report has no conformance_pct"
  | Some old_rate ->
      if old_rate < model_conformance_bar then
        Error
          (Printf.sprintf
             "committed model-check conformance %.2f%% is below 100%%" old_rate)
      else if current < model_conformance_bar then
        Error
          (Printf.sprintf
             "model refinement conformance dropped to %.2f%% (bar: every \
              observable, crash run and shard must match the model)"
             current)
      else Ok old_rate

(* ---------- mount-scale artifact ---------- *)

let mount_schema_id = "rgpdos-bench-mount-scale/1"

(* acceptance bars: a clean remount's device reads must be
   population-independent — the largest population reads at most 2x the
   smallest (the O(1)-recovery claim) — and the Zipf workload's
   high-water resident cache count must stay inside its budget, with the
   budget actually binding (evictions happened) so the claim is not
   vacuous. *)
let mount_read_ratio_bar = 2.0

let make_mount ~(result : Mount_bench.result) ~wall_ms =
  let z = result.Mount_bench.mb_zipf in
  Json.Obj
    [
      ("schema", Json.Str mount_schema_id);
      ( "mount",
        Json.List
          (List.map
             (fun (row : Mount_bench.mount_row) ->
               Json.Obj
                 [
                   ( "subjects",
                     Json.Num (float_of_int row.Mount_bench.mb_subjects) );
                   ("build_sim_ms", Json.Num row.Mount_bench.mb_build_sim_ms);
                   ( "mount_reads",
                     Json.Num (float_of_int row.Mount_bench.mb_mount_reads) );
                   ("mount_sim_us", Json.Num row.Mount_bench.mb_mount_sim_us);
                   ( "resident_after_mount",
                     Json.Num
                       (float_of_int row.Mount_bench.mb_resident_after_mount)
                   );
                   ( "index_pages",
                     Json.Num (float_of_int row.Mount_bench.mb_index_pages) );
                 ])
             result.Mount_bench.mb_rows) );
      ("read_ratio_max", Json.Num (Mount_bench.read_ratio result));
      ( "zipf",
        Json.Obj
          [
            ("subjects", Json.Num (float_of_int z.Mount_bench.zb_subjects));
            ("ops", Json.Num (float_of_int z.Mount_bench.zb_ops));
            ("budget", Json.Num (float_of_int z.Mount_bench.zb_budget));
            ( "resident_max",
              Json.Num (float_of_int z.Mount_bench.zb_resident_max) );
            ("hits", Json.Num (float_of_int z.Mount_bench.zb_hits));
            ("misses", Json.Num (float_of_int z.Mount_bench.zb_misses));
            ("evictions", Json.Num (float_of_int z.Mount_bench.zb_evictions));
            ("page_reads", Json.Num (float_of_int z.Mount_bench.zb_page_reads));
            ("sim_ms", Json.Num z.Mount_bench.zb_sim_ms);
            ("ops_ok", Json.Bool z.Mount_bench.zb_ops_ok);
          ] );
      ("wall_ms", Json.Num wall_ms);
    ]

let mount_read_ratio_of v =
  Option.bind (Json.member "read_ratio_max" v) Json.to_float

let validate_mount v =
  let* schema =
    require "missing schema key"
      (Option.bind (Json.member "schema" v) Json.to_str)
  in
  if schema <> mount_schema_id then Error ("unexpected schema id " ^ schema)
  else
    let* rows =
      require "missing mount section"
        (Option.bind (Json.member "mount" v) Json.to_list)
    in
    if List.length rows < 2 then
      Error "mount: need at least two populations to claim O(1) recovery"
    else
      let* () =
        List.fold_left
          (fun acc row ->
            let* () = acc in
            let* n =
              require "mount row: missing subjects"
                (Option.bind (Json.member "subjects" row) Json.to_float)
            in
            let* reads =
              require "mount row: missing mount_reads"
                (Option.bind (Json.member "mount_reads" row) Json.to_float)
            in
            if n <= 0.0 || reads <= 0.0 then
              Error "mount row: non-positive subjects or mount_reads"
            else Ok ())
          (Ok ()) rows
      in
      let* ratio =
        require "missing read_ratio_max" (mount_read_ratio_of v)
      in
      if ratio > mount_read_ratio_bar then
        Error
          (Printf.sprintf
             "clean-mount reads are population-dependent: max/min ratio \
              %.2fx exceeds the %.1fx bar"
             ratio mount_read_ratio_bar)
      else
        let* z = require "missing zipf section" (Json.member "zipf" v) in
        let num name =
          require ("zipf: missing " ^ name)
            (Option.bind (Json.member name z) Json.to_float)
        in
        let* budget = num "budget" in
        let* resident_max = num "resident_max" in
        let* evictions = num "evictions" in
        let* ops_ok =
          require "zipf: missing ops_ok"
            (match Json.member "ops_ok" z with
            | Some (Json.Bool b) -> Some b
            | _ -> None)
        in
        if resident_max > budget then
          Error
            (Printf.sprintf
               "zipf: resident high-water %.0f exceeds the %.0f-entry budget"
               resident_max budget)
        else if evictions <= 0.0 then
          Error "zipf: no evictions — the cache budget was not binding"
        else if not ops_ok then Error "zipf: a workload operation failed"
        else Ok ()

let compare_mount ~old_report ~read_ratio_max:current =
  match mount_read_ratio_of old_report with
  | None -> Error "old mount report has no read_ratio_max"
  | Some old_ratio ->
      let ceiling =
        old_ratio *. (1.0 +. (regression_threshold_pct /. 100.0))
      in
      if current > ceiling then
        Error
          (Printf.sprintf
             "clean-mount read ratio regressed: %.2fx -> %.2fx (ceiling \
              %.2fx = committed +%.0f%%)"
             old_ratio current ceiling regression_threshold_pct)
      else Ok old_ratio

(* ---------- segment-IO artifact ---------- *)

let segment_schema_id = "rgpdos-bench-segment-io/1"

(* acceptance bars for the log-structured layout: the segmented store
   must at least halve write amplification versus update-in-place on the
   same workload, must not ingest slower, must actually have
   group-committed (batches > 0, else the window never engaged), and
   BOTH sides must finish with a residue-clean device image — layout
   changes don't get to trade forensic hygiene for speed. *)
let segment_amp_ratio_bar = 2.0

let segment_side (s : Segment_bench.side) =
  Json.Obj
    [
      ("label", Json.Str s.Segment_bench.sg_label);
      ("subjects", Json.Num (float_of_int s.Segment_bench.sg_subjects));
      ("updates", Json.Num (float_of_int s.Segment_bench.sg_updates));
      ("erasures", Json.Num (float_of_int s.Segment_bench.sg_erasures));
      ("deletes", Json.Num (float_of_int s.Segment_bench.sg_deletes));
      ("window", Json.Num (float_of_int s.Segment_bench.sg_window));
      ( "logical_bytes",
        Json.Num (float_of_int s.Segment_bench.sg_logical_bytes) );
      ( "blocks_written",
        Json.Num (float_of_int s.Segment_bench.sg_blocks_written) );
      ( "bytes_written",
        Json.Num (float_of_int s.Segment_bench.sg_bytes_written) );
      ("trims", Json.Num (float_of_int s.Segment_bench.sg_trims));
      ("write_amp", Json.Num s.Segment_bench.sg_write_amp);
      ("ingest_mb_s", Json.Num s.Segment_bench.sg_ingest_mb_s);
      ("sim_ms", Json.Num s.Segment_bench.sg_sim_ms);
      ("batches", Json.Num (float_of_int s.Segment_bench.sg_batches));
      ("batched_ops", Json.Num (float_of_int s.Segment_bench.sg_batched_ops));
      ("compactions", Json.Num (float_of_int s.Segment_bench.sg_compactions));
      ("relocations", Json.Num (float_of_int s.Segment_bench.sg_relocations));
      ( "segments_reclaimed",
        Json.Num (float_of_int s.Segment_bench.sg_segments_reclaimed) );
      ( "backpressure_stalls",
        Json.Num (float_of_int s.Segment_bench.sg_backpressure_stalls) );
      ("residue_clean", Json.Bool s.Segment_bench.sg_residue_clean);
    ]

let make_segment ~(result : Segment_bench.result) ~wall_ms =
  Json.Obj
    [
      ("schema", Json.Str segment_schema_id);
      ("baseline", segment_side result.Segment_bench.sr_baseline);
      ("segmented", segment_side result.Segment_bench.sr_segmented);
      ("amp_ratio", Json.Num result.Segment_bench.sr_amp_ratio);
      ("ingest_ratio", Json.Num result.Segment_bench.sr_ingest_ratio);
      ("wall_ms", Json.Num wall_ms);
    ]

let segment_ingest_of v =
  Option.bind (Json.member "segmented" v) (fun s ->
      Option.bind (Json.member "ingest_mb_s" s) Json.to_float)

let validate_segment v =
  let* schema =
    require "missing schema key"
      (Option.bind (Json.member "schema" v) Json.to_str)
  in
  if schema <> segment_schema_id then Error ("unexpected schema id " ^ schema)
  else
    let side name =
      require ("missing " ^ name ^ " section") (Json.member name v)
    in
    let num s name =
      require ("side: missing " ^ name)
        (Option.bind (Json.member name s) Json.to_float)
    in
    let flag s name =
      require ("side: missing " ^ name)
        (match Json.member name s with Some (Json.Bool b) -> Some b | _ -> None)
    in
    let* base = side "baseline" in
    let* seg = side "segmented" in
    let* subjects = num seg "subjects" in
    let* seg_batches = num seg "batches" in
    let* seg_amp = num seg "write_amp" in
    let* base_amp = num base "write_amp" in
    let* base_clean = flag base "residue_clean" in
    let* seg_clean = flag seg "residue_clean" in
    let* amp_ratio =
      require "missing amp_ratio"
        (Option.bind (Json.member "amp_ratio" v) Json.to_float)
    in
    let* ingest_ratio =
      require "missing ingest_ratio"
        (Option.bind (Json.member "ingest_ratio" v) Json.to_float)
    in
    if subjects < 10_000.0 then
      Error
        (Printf.sprintf
           "segment: %d subjects — the claim requires >= 10^4"
           (int_of_float subjects))
    else if seg_amp <= 0.0 || base_amp <= 0.0 then
      Error "segment: non-positive write amplification"
    else if seg_batches <= 0.0 then
      Error "segment: no group-commit batches — the window never engaged"
    else if not base_clean then
      Error "segment: baseline side left plaintext residue on the device"
    else if not seg_clean then
      Error "segment: segmented side left plaintext residue on the device"
    else if amp_ratio < segment_amp_ratio_bar then
      Error
        (Printf.sprintf
           "write amplification only improved %.2fx (%.2f -> %.2f); the bar \
            is %.1fx"
           amp_ratio base_amp seg_amp segment_amp_ratio_bar)
    else if ingest_ratio <= 1.0 then
      Error
        (Printf.sprintf
           "segmented sustained ingest is not faster: ratio %.2fx"
           ingest_ratio)
    else Ok ()

let compare_segment ~old_report ~ingest_mb_s:current =
  match segment_ingest_of old_report with
  | None -> Error "old segment report has no segmented ingest_mb_s"
  | Some old_ingest ->
      let floor =
        old_ingest *. (1.0 -. (regression_threshold_pct /. 100.0))
      in
      if current < floor then
        Error
          (Printf.sprintf
             "sustained ingest regressed: %.2f -> %.2f MB/s (floor %.2f = \
              committed -%.0f%%)"
             old_ingest current floor regression_threshold_pct)
      else Ok old_ingest

(* ---------- rights-SLA artifact ---------- *)

let sla_schema_id = "rgpdos-bench-rights-sla/1"

(* acceptance bars for the deadline lane: under saturating batch load the
   EDF dispatcher must cut the Art. 15 access p99 by at least 5x against
   FIFO on the identical schedule, must itself miss no deadline anywhere
   (main mix, storm, breach), and must actually have preempted (else the
   lane never engaged and the numbers are vacuous). *)
let sla_improvement_bar = 5.0

let sla_right (rs : Sla_bench.right_stats) =
  Json.Obj
    [
      ("label", Json.Str rs.Sla_bench.rs_label);
      ("count", Json.Num (float_of_int rs.Sla_bench.rs_count));
      ("errors", Json.Num (float_of_int rs.Sla_bench.rs_errors));
      ("p50_ns", Json.Num (float_of_int rs.Sla_bench.rs_p50_ns));
      ("p99_ns", Json.Num (float_of_int rs.Sla_bench.rs_p99_ns));
      ("max_ns", Json.Num (float_of_int rs.Sla_bench.rs_max_ns));
      ("misses", Json.Num (float_of_int rs.Sla_bench.rs_misses));
      ("deadline_ns", Json.Num (float_of_int rs.Sla_bench.rs_deadline_ns));
    ]

let sla_side (s : Sla_bench.side) =
  Json.Obj
    [
      ("policy", Json.Str s.Sla_bench.sd_policy);
      ("batch_jobs", Json.Num (float_of_int s.Sla_bench.sd_batch_jobs));
      ("batch_errors", Json.Num (float_of_int s.Sla_bench.sd_batch_errors));
      ("sim_ns", Json.Num (float_of_int s.Sla_bench.sd_sim_ns));
      ("wall_s", Json.Num s.Sla_bench.sd_wall_s);
      ( "counters",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Num (float_of_int v)))
             s.Sla_bench.sd_counters) );
      ("rights", Json.List (List.map sla_right s.Sla_bench.sd_rights));
    ]

let make_sla ~(result : Sla_bench.result) ~wall_ms =
  Json.Obj
    [
      ("schema", Json.Str sla_schema_id);
      ("subjects", Json.Num (float_of_int result.Sla_bench.r_subjects));
      ("domains", Json.Num (float_of_int result.Sla_bench.r_domains));
      ("seed", Json.Num (Int64.to_float result.Sla_bench.r_seed));
      ("batches", Json.Num (float_of_int result.Sla_bench.r_batches));
      ( "batch_every_ns",
        Json.Num (float_of_int result.Sla_bench.r_batch_every_ns) );
      ("fifo", sla_side result.Sla_bench.r_fifo);
      ("edf", sla_side result.Sla_bench.r_edf);
      ( "improvement",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Num v))
             result.Sla_bench.r_improvement) );
      ( "storm",
        Json.Obj
          [
            ( "requests",
              Json.Num (float_of_int result.Sla_bench.r_storm.Sla_bench.st_requests) );
            ( "p50_ns",
              Json.Num (float_of_int result.Sla_bench.r_storm.Sla_bench.st_p50_ns) );
            ( "p99_ns",
              Json.Num (float_of_int result.Sla_bench.r_storm.Sla_bench.st_p99_ns) );
            ( "misses",
              Json.Num (float_of_int result.Sla_bench.r_storm.Sla_bench.st_misses) );
            ( "drain_ns",
              Json.Num (float_of_int result.Sla_bench.r_storm.Sla_bench.st_drain_ns) );
          ] );
      ( "breach",
        Json.Obj
          [
            ( "affected",
              Json.Num (float_of_int result.Sla_bench.r_breach.Sla_bench.bn_affected) );
            ( "entries",
              Json.Num (float_of_int result.Sla_bench.r_breach.Sla_bench.bn_entries) );
            ( "latency_ns",
              Json.Num (float_of_int result.Sla_bench.r_breach.Sla_bench.bn_latency_ns) );
            ( "deadline_ns",
              Json.Num
                (float_of_int result.Sla_bench.r_breach.Sla_bench.bn_deadline_ns) );
            ("met", Json.Bool result.Sla_bench.r_breach.Sla_bench.bn_met);
          ] );
      ("wall_ms", Json.Num wall_ms);
    ]

let sla_improvement_of v =
  Option.bind (Json.member "improvement" v) (fun imp ->
      Option.bind (Json.member "art15" imp) Json.to_float)

let validate_sla v =
  let* schema =
    require "missing schema key"
      (Option.bind (Json.member "schema" v) Json.to_str)
  in
  if schema <> sla_schema_id then Error ("unexpected schema id " ^ schema)
  else
    let num obj name =
      require ("missing " ^ name)
        (Option.bind (Json.member name obj) Json.to_float)
    in
    let* side_fifo = require "missing fifo section" (Json.member "fifo" v) in
    let* side_edf = require "missing edf section" (Json.member "edf" v) in
    let counters s =
      let* c = require "side: missing counters" (Json.member "counters" s) in
      let rec go = function
        | [] -> Ok c
        | n :: rest -> (
            match Option.bind (Json.member n c) Json.to_float with
            | Some _ -> go rest
            | None -> Error ("side: missing canonical counter " ^ n))
      in
      go Rgpdos_kernel.Scheduler.counter_names
    in
    let* fifo_counters = counters side_fifo in
    let* edf_counters = counters side_edf in
    let right s label =
      match Json.member "rights" s with
      | Some (Json.List rights) ->
          require ("missing rights row " ^ label)
            (List.find_opt
               (fun r ->
                 Option.bind (Json.member "label" r) Json.to_str = Some label)
               rights)
      | _ -> Error "side: missing rights list"
    in
    let* fifo15 = right side_fifo "art15" in
    let* edf15 = right side_edf "art15" in
    let* fifo15_count = num fifo15 "count" in
    let* edf15_count = num edf15 "count" in
    let* edf15_misses = num edf15 "misses" in
    let* edf_deadline_misses = num edf_counters "deadline_misses" in
    let* edf_preemptions = num edf_counters "preemptions" in
    let* fifo_preemptions = num fifo_counters "preemptions" in
    let* improvement15 =
      require "missing art15 improvement" (sla_improvement_of v)
    in
    let* storm = require "missing storm section" (Json.member "storm" v) in
    let* storm_requests = num storm "requests" in
    let* storm_misses = num storm "misses" in
    let* breach = require "missing breach section" (Json.member "breach" v) in
    let* breach_affected = num breach "affected" in
    let* breach_met =
      require "missing breach met flag"
        (match Json.member "met" breach with
        | Some (Json.Bool b) -> Some b
        | _ -> None)
    in
    if fifo15_count <= 0.0 || edf15_count <= 0.0 then
      Error "sla: no Art. 15 samples on one of the sides"
    else if fifo15_count <> edf15_count then
      Error "sla: the two sides served different Art. 15 request counts"
    else if edf_preemptions <= 0.0 then
      Error "sla: EDF side never preempted — the deadline lane never engaged"
    else if fifo_preemptions <> 0.0 then
      Error "sla: FIFO side reports preemptions"
    else if edf15_misses > 0.0 || edf_deadline_misses > 0.0 then
      Error
        (Printf.sprintf
           "sla: EDF side missed deadlines (art15 %d, total %d) — the gated \
            config requires zero"
           (int_of_float edf15_misses)
           (int_of_float edf_deadline_misses))
    else if storm_requests <= 0.0 then Error "sla: storm served no withdrawals"
    else if storm_misses > 0.0 then
      Error
        (Printf.sprintf "sla: storm missed %d withdrawal deadlines"
           (int_of_float storm_misses))
    else if breach_affected <= 0.0 then
      Error "sla: breach enumeration found no affected subjects"
    else if not breach_met then
      Error "sla: Art. 33 breach enumeration missed its deadline"
    else if improvement15 < sla_improvement_bar then
      Error
        (Printf.sprintf
           "sla: Art. 15 p99 only improved %.2fx under EDF; the bar is %.1fx"
           improvement15 sla_improvement_bar)
    else Ok ()

(* The improvement factor is strongly scale-dependent (the FIFO backlog
   deepens with every batch the schedule adds), so a quick-scale
   measurement cannot be held to a percentage of the committed
   full-scale figure.  The gate is the absolute bar on both sides: the
   committed artifact must clear it (else it should never have been
   committed) and the fresh measurement must clear it at whatever scale
   it ran. *)
let compare_sla ~old_report ~improvement15:current =
  match sla_improvement_of old_report with
  | None -> Error "old sla report has no art15 improvement"
  | Some old_imp ->
      if old_imp < sla_improvement_bar then
        Error
          (Printf.sprintf
             "committed Art. 15 p99 improvement %.2fx is under the %.1fx bar"
             old_imp sla_improvement_bar)
      else if current < sla_improvement_bar then
        Error
          (Printf.sprintf
             "Art. 15 p99 improvement %.2fx fell under the absolute %.1fx bar"
             current sla_improvement_bar)
      else Ok old_imp

(* ---------- async block-I/O artifact ---------- *)

let async_schema_id = "rgpdos-bench-async-io/1"

(* acceptance bars for the submission/completion queues: at queue depth
   >= 4 the pipelined DED load stages must run at least 1.8x faster than
   the same binary with async off, with more than 40% of the device
   service hidden behind compute — and the A/B must have held the
   async==sync invariant (identical stages and non-latency counters). *)
let async_speedup_bar = 1.8
let async_overlap_bar = 40.0

let async_depth_row (row : Async_bench.depth_row) =
  Json.Obj
    [
      ("depth", Json.Num (float_of_int row.Async_bench.ar_depth));
      ("total_ns", Json.Num (float_of_int row.Async_bench.ar_total_ns));
      ("load_ns", Json.Num (float_of_int row.Async_bench.ar_load_ns));
      ("load_speedup", Json.Num row.Async_bench.ar_load_speedup);
      ("total_speedup", Json.Num row.Async_bench.ar_total_speedup);
      ("overlap_pct", Json.Num row.Async_bench.ar_overlap_pct);
      ("submits", Json.Num (float_of_int row.Async_bench.ar_submits));
      ("highwater", Json.Num (float_of_int row.Async_bench.ar_highwater));
    ]

let async_size_run (s : Async_bench.size_run) =
  Json.Obj
    [
      ("subjects", Json.Num (float_of_int s.Async_bench.as_subjects));
      ("sync_total_ns", Json.Num (float_of_int s.Async_bench.as_sync_total_ns));
      ("sync_load_ns", Json.Num (float_of_int s.Async_bench.as_sync_load_ns));
      ("invariant_ok", Json.Bool s.Async_bench.as_invariant_ok);
      ("rows", Json.List (List.map async_depth_row s.Async_bench.as_rows));
    ]

let make_async ~(result : Async_bench.result) ~wall_ms =
  Json.Obj
    [
      ("schema", Json.Str async_schema_id);
      ( "depths",
        Json.List
          (List.map
             (fun d -> Json.Num (float_of_int d))
             result.Async_bench.a_depths) );
      ("sizes", Json.List (List.map async_size_run result.Async_bench.a_sizes));
      ("best_load_speedup", Json.Num result.Async_bench.a_best_load_speedup);
      ("best_overlap_pct", Json.Num result.Async_bench.a_best_overlap_pct);
      ("wall_ms", Json.Num wall_ms);
    ]

let async_speedup_of v =
  Option.bind (Json.member "best_load_speedup" v) Json.to_float

let async_overlap_of v =
  Option.bind (Json.member "best_overlap_pct" v) Json.to_float

let validate_async v =
  let* schema =
    require "missing schema key"
      (Option.bind (Json.member "schema" v) Json.to_str)
  in
  if schema <> async_schema_id then Error ("unexpected schema id " ^ schema)
  else
    let* sizes =
      match Json.member "sizes" v with
      | Some (Json.List (_ :: _ as sizes)) -> Ok sizes
      | Some (Json.List []) -> Error "async: empty size sweep"
      | _ -> Error "async: missing sizes list"
    in
    let* () =
      let check_size s =
        let* invariant =
          require "async: size run missing invariant_ok flag"
            (match Json.member "invariant_ok" s with
            | Some (Json.Bool b) -> Some b
            | _ -> None)
        in
        if not invariant then
          Error
            "async: a size run broke the async==sync invariant (stages or \
             non-latency counters diverged)"
        else
          let* rows =
            match Json.member "rows" s with
            | Some (Json.List (_ :: _ as rows)) -> Ok rows
            | _ -> Error "async: size run has no depth rows"
          in
          let has_deep =
            List.exists
              (fun r ->
                match Option.bind (Json.member "depth" r) Json.to_float with
                | Some d -> d >= 4.0
                | None -> false)
              rows
          in
          if not has_deep then Error "async: no row at queue depth >= 4"
          else Ok ()
      in
      List.fold_left
        (fun acc s -> match acc with Error _ -> acc | Ok () -> check_size s)
        (Ok ()) sizes
    in
    let* speedup =
      require "missing best_load_speedup" (async_speedup_of v)
    in
    let* overlap = require "missing best_overlap_pct" (async_overlap_of v) in
    if speedup < async_speedup_bar then
      Error
        (Printf.sprintf
           "async: load stages only sped up %.2fx at depth >= 4; the bar is \
            %.1fx"
           speedup async_speedup_bar)
    else if overlap < async_overlap_bar then
      Error
        (Printf.sprintf
           "async: only %.1f%% of device service overlapped compute; the bar \
            is %.0f%%"
           overlap async_overlap_bar)
    else Ok ()

(* Like the SLA gate: overlap grows with batch size (deeper pipelines
   hide more service behind decode), so a quick-scale run cannot be held
   to a percentage of the committed full-scale figure.  Both sides are
   held to the same absolute bars instead. *)
let compare_async ~old_report ~speedup:current ~overlap:current_overlap =
  match (async_speedup_of old_report, async_overlap_of old_report) with
  | None, _ -> Error "old async report has no best_load_speedup"
  | _, None -> Error "old async report has no best_overlap_pct"
  | Some old_speedup, Some old_overlap ->
      if old_speedup < async_speedup_bar then
        Error
          (Printf.sprintf
             "committed async load speedup %.2fx is under the %.1fx bar"
             old_speedup async_speedup_bar)
      else if old_overlap < async_overlap_bar then
        Error
          (Printf.sprintf
             "committed async overlap %.1f%% is under the %.0f%% bar"
             old_overlap async_overlap_bar)
      else if current < async_speedup_bar then
        Error
          (Printf.sprintf
             "async load speedup %.2fx fell under the absolute %.1fx bar"
             current async_speedup_bar)
      else if current_overlap < async_overlap_bar then
        Error
          (Printf.sprintf
             "async overlap %.1f%% fell under the absolute %.0f%% bar"
             current_overlap async_overlap_bar)
      else Ok old_speedup
