module Clock = Rgpdos_util.Clock
module Prng = Rgpdos_util.Prng
module Stats = Rgpdos_util.Stats
module Pool = Rgpdos_util.Pool
module Block_device = Rgpdos_block.Block_device
module Machine = Rgpdos.Machine
module Ded = Rgpdos_ded.Ded
module Processing = Rgpdos_ded.Processing
module Audit_log = Rgpdos_audit.Audit_log
module Scheduler = Rgpdos_kernel.Scheduler

type policy = Fifo | Edf

let policy_label = function Fifo -> "fifo" | Edf -> "edf"

type right = Access | Erase | Portability | Breach | Revoke

let right_label = function
  | Access -> "art15"
  | Erase -> "art17"
  | Portability -> "art20"
  | Breach -> "art33"
  | Revoke -> "art7"

let ms = 1_000_000

(* The 50 ms interactive SLO sits above the scan's longest
   non-preemptible section: stages 1-4 of the DED pipeline (type2req,
   membrane load, filter, data load) run to completion before the first
   shard-wave yield point exists, and at full scale that prefix alone is
   ~22 simulated ms.  No dispatcher can promise less than
   prefix + one wave + the service of earlier-deadline rights. *)
let deadline_ns = function
  | Access | Erase | Portability -> 50 * ms
  | Revoke -> 100 * ms
  | Breach -> 250 * ms

(* a storm burst shares one drain deadline scaled to its size: applying a
   withdrawal costs 5-17 simulated ms (membrane + copy propagation +
   journal, growing with the population), so "all applied by" is the
   meaningful SLO for a burst, not a flat per-request latency *)
let storm_budget_per_item = 25 * ms
let storm_deadline ~n = deadline_ns Revoke + (n * storm_budget_per_item)

let scan_cost_per_record = 50_000
let breach_cost_per_entry = 500
let scan_name = "sla_scan"

(* finer than Ded.default_grain so a scan spans several shard waves even
   at smoke scale (one wave = 8 cores x grain records; the yield point
   only exists between waves) *)
let scan_grain = 16

type right_stats = {
  rs_label : string;
  rs_count : int;
  rs_errors : int;
  rs_p50_ns : int;
  rs_p99_ns : int;
  rs_max_ns : int;
  rs_misses : int;
  rs_deadline_ns : int;
}

type side = {
  sd_policy : string;
  sd_batch_jobs : int;
  sd_batch_errors : int;
  sd_sim_ns : int;
  sd_wall_s : float;
  sd_counters : (string * int) list;
  sd_rights : right_stats list;
}

type storm = {
  st_requests : int;
  st_p50_ns : int;
  st_p99_ns : int;
  st_misses : int;
  st_drain_ns : int;
}

type breach = {
  bn_affected : int;
  bn_entries : int;
  bn_latency_ns : int;
  bn_deadline_ns : int;
  bn_met : bool;
}

type result = {
  r_subjects : int;
  r_domains : int;
  r_seed : int64;
  r_batches : int;
  r_batch_every_ns : int;
  r_fifo : side;
  r_edf : side;
  r_improvement : (string * float) list;
  r_storm : storm;
  r_breach : breach;
}

(* ------------------------------------------------------------------ *)
(* machine setup                                                      *)

type sim = {
  machine : Machine.t;
  pool : Pool.t option;
  subjects : string array;
  pd_subject : (string, string) Hashtbl.t;
}

let boot_sim ?pool ~seed ~subjects () =
  let prng = Prng.create ~seed () in
  let population = Population.generate prng ~n:subjects in
  let config =
    {
      Block_device.default_config with
      Block_device.block_count = max 16_384 ((subjects * 8) + 4_096);
    }
  in
  let machine =
    Machine.boot ~seed ~pd_device:config
      ~npd_device:Block_device.default_config ()
  in
  (match Machine.load_declarations machine Population.type_declaration with
  | Ok _ -> ()
  | Error e -> failwith ("sla_bench: declarations: " ^ e));
  let counting _ctx inputs =
    Ok (Processing.value_output (Rgpdos_dbfs.Value.VInt (List.length inputs)))
  in
  (* the saturating batch load: a heavy, shard-decomposable analytics
     pass (50 us of simulated CPU per record) *)
  (match
     Machine.make_processing machine ~name:scan_name ~purpose:"analytics"
       ~touches:[ (Population.type_name, [ "year_of_birth" ]) ]
       ~cpu_cost_per_record:scan_cost_per_record
       ~shard_reduce:Processing.reduce_int_sum counting
   with
  | Error e -> failwith ("sla_bench: make_processing: " ^ e)
  | Ok spec -> (
      match Machine.register_processing machine spec with
      | Ok _ -> ()
      | Error e -> failwith ("sla_bench: register: " ^ e)));
  let pd_subject = Hashtbl.create (2 * subjects) in
  List.iter
    (fun (p : Population.person) ->
      match
        Machine.collect machine ~type_name:Population.type_name
          ~subject:p.Population.subject_id
          ~interface:"web_form:signup_form.html"
          ~record:(Population.record_of p)
          ~consents:p.Population.consent_profile ()
      with
      | Ok pd_id -> Hashtbl.replace pd_subject pd_id p.Population.subject_id
      | Error e -> failwith ("sla_bench: collect: " ^ e))
    population;
  let subjects_arr =
    Array.of_list (List.map (fun p -> p.Population.subject_id) population)
  in
  { machine; pool; subjects = subjects_arr; pd_subject }

let run_scan ?yield sim =
  let yield = Option.value ~default:(fun () -> ()) yield in
  Machine.invoke sim.machine ?pool:sim.pool ~grain:scan_grain ~yield
    ~name:scan_name
    ~target:(Ded.All_of_type Population.type_name)
    ()

(* Two priming scans: the first warms DBFS caches, the second measures
   the warm simulated service time the open-loop interarrival is derived
   from (saturation needs interarrival < warm service time). *)
let prime sim =
  let clock = Machine.clock sim.machine in
  (match run_scan sim with
  | Ok _ -> ()
  | Error e -> failwith ("sla_bench: priming scan: " ^ e));
  let before = Clock.now clock in
  (match run_scan sim with
  | Ok _ -> ()
  | Error e -> failwith ("sla_bench: priming scan: " ^ e));
  Clock.now clock - before

(* ------------------------------------------------------------------ *)
(* open-loop schedule                                                 *)

type request = {
  rq_right : right;
  rq_subject : string;
  rq_arrival : int;
  rq_deadline : int;
  rq_seq : int;
}

type ev = Ev_batch of { ba : int; bseq : int } | Ev_right of request

let ev_arrival = function
  | Ev_batch b -> b.ba
  | Ev_right r -> r.rq_arrival

let pick_right prng =
  let x = Prng.float prng 1.0 in
  if x < 0.40 then Access
  else if x < 0.70 then Portability
  else if x < 0.95 then Erase
  else Breach

(* mixed schedule: batch scans every [batch_every]; rights as a Poisson
   stream (mean interarrival [batch_every]/8) over Zipf-skewed subjects *)
let gen_schedule ~prng ~subjects ~batches ~batch_every =
  let horizon = batches * batch_every in
  let zipf = Prng.Zipf.create ~n:(Array.length subjects) ~theta:0.99 in
  let rights_mean = float_of_int batch_every /. 8.0 in
  let raw = ref [] in
  let gen = ref 0 in
  let push x =
    raw := (!gen, x) :: !raw;
    incr gen
  in
  for i = 0 to batches - 1 do
    push (`B (i * batch_every))
  done;
  let t = ref 0.0 in
  let continue = ref true in
  while !continue do
    t := !t +. Prng.exponential prng rights_mean;
    let arr = int_of_float !t in
    if arr >= horizon then continue := false
    else begin
      let r = pick_right prng in
      let s = subjects.(Prng.Zipf.sample zipf prng) in
      push (`R (arr, r, s))
    end
  done;
  let arrival_of_raw = function `B a -> a | `R (a, _, _) -> a in
  let sorted =
    List.sort
      (fun (g1, x1) (g2, x2) ->
        match compare (arrival_of_raw x1) (arrival_of_raw x2) with
        | 0 -> compare g1 g2
        | c -> c)
      (List.rev !raw)
  in
  List.mapi
    (fun seq (_, x) ->
      match x with
      | `B a -> Ev_batch { ba = a; bseq = seq }
      | `R (a, r, s) ->
          Ev_right
            {
              rq_right = r;
              rq_subject = s;
              rq_arrival = a;
              rq_deadline = a + deadline_ns r;
              rq_seq = seq;
            })
    sorted

(* ------------------------------------------------------------------ *)
(* the dispatcher                                                     *)

type sim_out = {
  o_side : side;
  o_fins : (right * int) list;  (* (class, relative completion) per right *)
  o_breach_info : (int * int) option;  (* (affected, entries) of last replay *)
}

let replay_breach sim =
  let clock = Machine.clock sim.machine in
  let entries = Audit_log.entries (Machine.audit sim.machine) in
  let n = List.length entries in
  Clock.advance clock (breach_cost_per_entry * n);
  let affected = Hashtbl.create 256 in
  let mark pd_id =
    match Hashtbl.find_opt sim.pd_subject pd_id with
    | Some s -> Hashtbl.replace affected s ()
    | None -> ()
  in
  List.iter
    (fun (e : Audit_log.entry) ->
      match e.Audit_log.event with
      | Audit_log.Processed { inputs; produced; _ } ->
          List.iter mark inputs;
          List.iter mark produced
      | Audit_log.Collected { pd_id; _ } -> mark pd_id
      | _ -> ())
    entries;
  (Hashtbl.length affected, n)

let simulate sim ~policy ~schedule =
  let wall0 = Unix.gettimeofday () in
  let clock = Machine.clock sim.machine in
  let t0 = Clock.now clock in
  let events = ref schedule in
  let pend_rights : request list ref = ref [] in
  let pend_batch : (int * int) Queue.t = Queue.create () in
  let counters = Stats.Counter.create () in
  let max_depth = ref 0 in
  let lats : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let misses : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let errors : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let cell tbl label =
    match Hashtbl.find_opt tbl label with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.replace tbl label c;
        c
  in
  let icell tbl label =
    match Hashtbl.find_opt tbl label with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.replace tbl label c;
        c
  in
  let fins = ref [] in
  let breach_info = ref None in
  let batch_jobs = ref 0 and batch_errors = ref 0 in
  let release () =
    let now_rel = Clock.now clock - t0 in
    let rec go () =
      match !events with
      | e :: rest when ev_arrival e <= now_rel ->
          events := rest;
          (match e with
          | Ev_batch b -> Queue.add (b.ba, b.bseq) pend_batch
          | Ev_right r -> pend_rights := r :: !pend_rights);
          go ()
      | _ -> ()
    in
    go ();
    let depth = List.length !pend_rights + Queue.length pend_batch in
    if depth > !max_depth then max_depth := depth
  in
  let take_right () =
    match !pend_rights with
    | [] -> None
    | hd :: tl ->
        let better a b =
          match policy with
          | Fifo -> if a.rq_seq <= b.rq_seq then a else b
          | Edf ->
              if (a.rq_deadline, a.rq_seq) <= (b.rq_deadline, b.rq_seq) then a
              else b
        in
        let best = List.fold_left better hd tl in
        pend_rights :=
          List.filter (fun r -> r.rq_seq <> best.rq_seq) !pend_rights;
        Some best
  in
  let serve_right r =
    let label = right_label r.rq_right in
    Stats.Counter.incr counters "rights_jobs";
    let outcome =
      match r.rq_right with
      | Access ->
          Result.map ignore
            (Machine.right_of_access sim.machine ~subject:r.rq_subject)
      | Erase ->
          Result.map ignore
            (Machine.right_to_erasure sim.machine ~subject:r.rq_subject)
      | Portability ->
          Result.map ignore
            (Machine.right_to_portability sim.machine ~subject:r.rq_subject)
      | Revoke ->
          Result.map ignore
            (Machine.set_consent sim.machine ~subject:r.rq_subject
               ~purpose:"analytics" Rgpdos_membrane.Membrane.Denied)
      | Breach ->
          breach_info := Some (replay_breach sim);
          Ok ()
    in
    (match outcome with
    | Ok () -> ()
    | Error _ -> incr (icell errors label));
    let fin_rel = Clock.now clock - t0 in
    fins := (r.rq_right, fin_rel) :: !fins;
    let c = cell lats label in
    c := float_of_int (fin_rel - r.rq_arrival) :: !c;
    if fin_rel > r.rq_deadline then begin
      incr (icell misses label);
      Stats.Counter.incr counters "deadline_misses"
    end
  in
  (* the shard-wave preemption point: under EDF, pending rights drain in
     deadline order between waves of the in-flight scan *)
  let yield_fn =
    match policy with
    | Fifo -> fun () -> ()
    | Edf ->
        fun () ->
          release ();
          let rec drain () =
            match take_right () with
            | None -> ()
            | Some r ->
                Stats.Counter.incr counters "preemptions";
                serve_right r;
                release ();
                drain ()
          in
          drain ()
  in
  let run_batch () =
    incr batch_jobs;
    match run_scan ~yield:yield_fn sim with
    | Ok _ -> ()
    | Error _ -> incr batch_errors
  in
  let rec loop () =
    release ();
    let have_r = !pend_rights <> [] in
    let have_b = not (Queue.is_empty pend_batch) in
    if (not have_r) && not have_b then
      match !events with
      | [] -> ()
      | e :: _ ->
          let target = t0 + ev_arrival e in
          let now = Clock.now clock in
          if target > now then Clock.advance clock (target - now);
          loop ()
    else begin
      let run_right =
        if not have_r then false
        else if not have_b then true
        else
          match policy with
          | Edf -> true
          | Fifo ->
              let min_rseq =
                List.fold_left
                  (fun acc r -> min acc r.rq_seq)
                  max_int !pend_rights
              in
              let _, bseq = Queue.peek pend_batch in
              min_rseq < bseq
      in
      (if run_right then
         match take_right () with
         | Some r -> serve_right r
         | None -> assert false
       else begin
         ignore (Queue.pop pend_batch);
         run_batch ()
       end);
      loop ()
    end
  in
  loop ();
  Stats.Counter.incr counters ~by:!max_depth "max_queue_depth";
  let right_stats_of label rt =
    let ls = match Hashtbl.find_opt lats label with Some c -> !c | None -> [] in
    let count = List.length ls in
    let m = match Hashtbl.find_opt misses label with Some c -> !c | None -> 0 in
    let e = match Hashtbl.find_opt errors label with Some c -> !c | None -> 0 in
    if count = 0 then
      {
        rs_label = label;
        rs_count = 0;
        rs_errors = e;
        rs_p50_ns = 0;
        rs_p99_ns = 0;
        rs_max_ns = 0;
        rs_misses = m;
        rs_deadline_ns = deadline_ns rt;
      }
    else
      let s = Stats.summarize ls in
      {
        rs_label = label;
        rs_count = count;
        rs_errors = e;
        rs_p50_ns = int_of_float s.Stats.p50;
        rs_p99_ns = int_of_float s.Stats.p99;
        rs_max_ns = int_of_float s.Stats.max;
        rs_misses = m;
        rs_deadline_ns = deadline_ns rt;
      }
  in
  let classes =
    [ Access; Erase; Portability; Breach ]
    @ (if Hashtbl.mem lats (right_label Revoke) then [ Revoke ] else [])
  in
  let rights =
    List.sort
      (fun a b -> compare a.rs_label b.rs_label)
      (List.map (fun rt -> right_stats_of (right_label rt) rt) classes)
  in
  let side =
    {
      sd_policy = policy_label policy;
      sd_batch_jobs = !batch_jobs;
      sd_batch_errors = !batch_errors;
      sd_sim_ns = Clock.now clock - t0;
      sd_wall_s = Unix.gettimeofday () -. wall0;
      sd_counters =
        List.map
          (fun n -> (n, Stats.Counter.get counters n))
          Scheduler.counter_names;
      sd_rights = rights;
    }
  in
  { o_side = side; o_fins = !fins; o_breach_info = !breach_info }

(* ------------------------------------------------------------------ *)
(* the three runs                                                     *)

let find_right side label =
  List.find_opt (fun rs -> rs.rs_label = label) side.sd_rights

let improvement_of fifo edf =
  List.filter_map
    (fun rs ->
      match find_right fifo rs.rs_label with
      | Some f when rs.rs_count > 0 && f.rs_count > 0 && rs.rs_p99_ns > 0 ->
          Some (rs.rs_label, float_of_int f.rs_p99_ns /. float_of_int rs.rs_p99_ns)
      | _ -> None)
    edf.sd_rights

let run ?(seed = 7L) ?(domains = 4) ?(subjects = 2000) ?(batches = 30) () =
  if subjects < 10 then invalid_arg "Sla_bench.run: subjects must be >= 10";
  if batches < 2 then invalid_arg "Sla_bench.run: batches must be >= 2";
  if domains < 0 then invalid_arg "Sla_bench.run: domains must be >= 0";
  Pool.with_pool ~workers:domains (fun pool_v ->
      let pool = if domains = 0 then None else Some pool_v in
      (* A/B: one schedule, two dispatchers, two identically-seeded
         machines *)
      let sim_f = boot_sim ?pool ~seed ~subjects () in
      let scan_ns = prime sim_f in
      let batch_every = max 1 (scan_ns * 7 / 10) in
      let schedule =
        gen_schedule
          ~prng:(Prng.create ~seed ())
          ~subjects:sim_f.subjects ~batches ~batch_every
      in
      let out_f = simulate sim_f ~policy:Fifo ~schedule in
      let sim_e = boot_sim ?pool ~seed ~subjects () in
      let scan_ns_e = prime sim_e in
      if scan_ns_e <> scan_ns then
        failwith "sla_bench: priming scans disagree across sides";
      let out_e = simulate sim_e ~policy:Edf ~schedule in
      (* consent-revocation storm: 10% of subjects withdraw in one tick
         mid-run, drained under EDF while scans keep arriving *)
      let sim_s = boot_sim ?pool ~seed ~subjects () in
      let _ = prime sim_s in
      let storm_batches = 6 in
      let storm_at = batch_every * 5 / 2 in
      let n_storm = subjects / 10 in
      let storm_reqs =
        List.init n_storm (fun i ->
            Ev_right
              {
                rq_right = Revoke;
                rq_subject = sim_s.subjects.(i * (subjects / n_storm));
                rq_arrival = storm_at;
                rq_deadline = storm_at + storm_deadline ~n:n_storm;
                rq_seq = 0;
              })
      in
      let storm_schedule =
        let batch_evs =
          List.init storm_batches (fun i -> Ev_batch { ba = i * batch_every; bseq = 0 })
        in
        List.sort
          (fun a b -> compare (ev_arrival a) (ev_arrival b))
          (batch_evs @ storm_reqs)
        |> List.mapi (fun seq ev ->
               match ev with
               | Ev_batch b -> Ev_batch { b with bseq = seq }
               | Ev_right r -> Ev_right { r with rq_seq = seq })
      in
      let out_s = simulate sim_s ~policy:Edf ~schedule:storm_schedule in
      let storm =
        let rs =
          match find_right out_s.o_side (right_label Revoke) with
          | Some rs -> rs
          | None -> failwith "sla_bench: storm produced no art7 samples"
        in
        let drain =
          List.fold_left
            (fun acc (rt, fin) ->
              if rt = Revoke then max acc (fin - storm_at) else acc)
            0 out_s.o_fins
        in
        {
          st_requests = rs.rs_count;
          st_p50_ns = rs.rs_p50_ns;
          st_p99_ns = rs.rs_p99_ns;
          st_misses = rs.rs_misses;
          st_drain_ns = drain;
        }
      in
      (* Art. 33 breach notification: enumerate every affected subject by
         replaying the audit chain, against the notification deadline *)
      let sim_b = boot_sim ?pool ~seed ~subjects () in
      let _ = prime sim_b in
      let breach_at = batch_every * 7 / 2 in
      let breach_schedule =
        let batch_evs =
          List.init storm_batches (fun i -> Ev_batch { ba = i * batch_every; bseq = i })
        in
        batch_evs
        @ [
            Ev_right
              {
                rq_right = Breach;
                rq_subject = "";
                rq_arrival = breach_at;
                rq_deadline = breach_at + deadline_ns Breach;
                rq_seq = storm_batches;
              };
          ]
        |> List.sort (fun a b ->
               compare (ev_arrival a, 0) (ev_arrival b, 0))
      in
      let out_b = simulate sim_b ~policy:Edf ~schedule:breach_schedule in
      let breach =
        let affected, entries =
          match out_b.o_breach_info with
          | Some x -> x
          | None -> failwith "sla_bench: breach scenario never replayed"
        in
        let rs =
          match find_right out_b.o_side (right_label Breach) with
          | Some rs -> rs
          | None -> failwith "sla_bench: breach produced no art33 sample"
        in
        {
          bn_affected = affected;
          bn_entries = entries;
          bn_latency_ns = rs.rs_max_ns;
          bn_deadline_ns = deadline_ns Breach;
          bn_met = rs.rs_misses = 0;
        }
      in
      {
        r_subjects = subjects;
        r_domains = domains;
        r_seed = seed;
        r_batches = batches;
        r_batch_every_ns = batch_every;
        r_fifo = out_f.o_side;
        r_edf = out_e.o_side;
        r_improvement = improvement_of out_f.o_side out_e.o_side;
        r_storm = storm;
        r_breach = breach;
      })

let improvement r label = List.assoc_opt label r.r_improvement

let render r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let msf ns = float_of_int ns /. 1e6 in
  pf "rights-under-load SLA: %d subjects, %d batch scans every %.2f ms, seed %Ld, %d domains\n"
    r.r_subjects r.r_batches (msf r.r_batch_every_ns) r.r_seed r.r_domains;
  let side s =
    pf "  [%s] %d scans (%d errors), sim %.1f ms, wall %.2f s\n" s.sd_policy
      s.sd_batch_jobs s.sd_batch_errors (msf s.sd_sim_ns) s.sd_wall_s;
    List.iter (fun (k, v) -> pf "    %s=%d\n" k v) s.sd_counters;
    List.iter
      (fun rs ->
        pf "    %-6s n=%-4d p50=%8.3f ms  p99=%8.3f ms  max=%8.3f ms  misses=%d (SLO %.0f ms)\n"
          rs.rs_label rs.rs_count (msf rs.rs_p50_ns) (msf rs.rs_p99_ns)
          (msf rs.rs_max_ns) rs.rs_misses (msf rs.rs_deadline_ns))
      s.sd_rights
  in
  side r.r_fifo;
  side r.r_edf;
  List.iter
    (fun (label, f) -> pf "  p99 improvement %s: %.1fx\n" label f)
    r.r_improvement;
  pf "  storm: %d withdrawals, p50 %.3f ms, p99 %.3f ms, drained in %.3f ms, misses=%d\n"
    r.r_storm.st_requests (msf r.r_storm.st_p50_ns) (msf r.r_storm.st_p99_ns)
    (msf r.r_storm.st_drain_ns) r.r_storm.st_misses;
  pf "  breach: %d subjects enumerated from %d audit entries in %.3f ms (deadline %.0f ms, %s)\n"
    r.r_breach.bn_affected r.r_breach.bn_entries (msf r.r_breach.bn_latency_ns)
    (msf r.r_breach.bn_deadline_ns)
    (if r.r_breach.bn_met then "met" else "MISSED");
  Buffer.contents b
