(* Deterministic fault-injection campaign: crash the scripted GDPR
   workload after every single device write, remount, self-heal, and
   check the compliance invariants at each point. *)

module Clock = Rgpdos_util.Clock
module Prng = Rgpdos_util.Prng
module Json = Rgpdos_util.Json
module Stats = Rgpdos_util.Stats
module Block_device = Rgpdos_block.Block_device
module Fault_plan = Block_device.Fault_plan
module Journal_ring = Rgpdos_block.Journal_ring
module Dbfs = Rgpdos_dbfs.Dbfs
module Membrane = Rgpdos_membrane.Membrane
module Audit_log = Rgpdos_audit.Audit_log
module Machine = Rgpdos.Machine

type crash_verdict = {
  cp_write : int;
  cp_step : string;
  cp_plan : string;
  cp_replay_stop : string;
  cp_quarantined : int;
  cp_residue_free : bool;
  cp_audit_ok : bool;
  cp_fsck_clean : bool;
}

type scenario_verdict = { sc_name : string; sc_pass : bool; sc_detail : string }

type result = {
  fc_seed : int;
  fc_subjects : int;
  fc_steps : (string * int) list;
  fc_total_writes : int;
  fc_sampled : bool;
  fc_points : crash_verdict list;
  fc_scenarios : scenario_verdict list;
}

(* Small devices keep the per-point forensic scan cheap without changing
   any cost-model semantics: the campaign measures verdicts, not time. *)
let pd_config =
  { Block_device.default_config with block_size = 512; block_count = 4_096 }

let npd_config =
  { Block_device.default_config with block_size = 512; block_count = 2_048 }

let actor = "ded"

let fail_step name e = failwith (Printf.sprintf "Fault_campaign %s: %s" name e)

let boot ~seed =
  let m =
    Machine.boot ~seed:(Int64.of_int seed) ~pd_device:pd_config
      ~npd_device:npd_config ()
  in
  match Machine.load_declarations m Population.type_declaration with
  | Ok _ -> m
  | Error e -> fail_step "load_declarations" e

let people_of ~seed ~subjects =
  Population.generate (Prng.create ~seed:(Int64.of_int seed) ()) ~n:subjects

(* ------------------------------------------------------------------ *)
(* The scripted workload, as named steps                               *)

type step = { s_name : string; s_run : Machine.t -> unit }

let collect_person m (p : Population.person) =
  match
    Machine.collect m ~type_name:Population.type_name
      ~subject:p.Population.subject_id ~interface:"web_form"
      ~record:(Population.record_of p) ~consents:p.Population.consent_profile
      ()
  with
  | Ok _ -> ()
  | Error e -> fail_step "collect" e

(* All but the last two subjects are collected before a 2-year clock jump
   (the person type's TTL), so the sweep meets both expired and live
   entries; one aged subject flips a consent, another is erased. *)
let script people =
  let n = List.length people in
  let aged = List.filteri (fun i _ -> i < n - 2) people in
  let fresh = List.filteri (fun i _ -> i >= n - 2) people in
  let subj (p : Population.person) = p.Population.subject_id in
  [
    { s_name = "collect"; s_run = (fun m -> List.iter (collect_person m) aged) };
    {
      s_name = "consent-flip";
      s_run =
        (fun m ->
          match
            Machine.set_consent m ~subject:(subj (List.hd aged))
              ~purpose:"marketing" Membrane.Denied
          with
          | Ok _ -> ()
          | Error e -> fail_step "consent-flip" e);
    };
    {
      s_name = "erase";
      s_run =
        (fun m ->
          match Machine.right_to_erasure m ~subject:(subj (List.nth aged 1)) with
          | Ok _ -> ()
          | Error e -> fail_step "erase" e);
    };
    {
      s_name = "age";
      s_run =
        (fun m -> Clock.advance (Machine.clock m) ((2 * Clock.year) + Clock.day));
    };
    {
      s_name = "collect-fresh";
      s_run = (fun m -> List.iter (collect_person m) fresh);
    };
    { s_name = "ttl-sweep"; s_run = (fun m -> ignore (Machine.sweep_ttl m ())) };
    {
      s_name = "access";
      s_run =
        (fun m ->
          match Machine.right_of_access m ~subject:(subj (List.hd fresh)) with
          | Ok _ -> ()
          | Error e -> fail_step "access" e);
    };
    {
      s_name = "persist-audit";
      s_run =
        (fun m ->
          match Machine.persist_audit m with
          | Ok () -> ()
          | Error e -> fail_step "persist-audit" e);
    };
  ]

(* Fault-free run with an empty plan installed after boot + declarations:
   counts the write ops of each step, defining the crash-point space. *)
let reference_run ~seed people =
  let m = boot ~seed in
  let dev = Machine.pd_device m in
  let plan = Fault_plan.create () in
  Block_device.set_fault_plan dev (Some plan);
  let spans =
    List.map
      (fun s ->
        s.s_run m;
        (s.s_name, Fault_plan.writes_seen plan))
      (script people)
  in
  Block_device.set_fault_plan dev None;
  spans

let step_of spans k =
  match List.find_opt (fun (_, upto) -> k <= upto) spans with
  | Some (name, _) -> name
  | None -> "?"

(* ------------------------------------------------------------------ *)
(* One crash point: run to the snapshot, remount it, repair, check     *)

let live_subject store (p : Population.person) =
  match Dbfs.pds_of_subject store ~actor p.Population.subject_id with
  | Error _ -> false
  | Ok ids ->
      List.exists
        (fun id ->
          match Dbfs.entry_info store ~actor id with
          | Ok (_, _, erased) -> not erased
          | Error _ -> false)
        ids

let run_point ~seed ~spans people k =
  let m = boot ~seed in
  let dev = Machine.pd_device m in
  let plan = Fault_plan.create () in
  Fault_plan.crash_after_writes plan k;
  (* capture at install time: fired entries are removed from the plan *)
  let plan_str = Fault_plan.to_string plan in
  Block_device.set_fault_plan dev (Some plan);
  let audit_bytes = ref "" in
  let captured = ref false in
  List.iter
    (fun s ->
      if not !captured then begin
        s.s_run m;
        if Block_device.crash_image dev <> None then begin
          captured := true;
          audit_bytes := Audit_log.to_bytes (Machine.audit m)
        end
      end)
    (script people);
  let image =
    match Block_device.crash_image dev with
    | Some i -> i
    | None -> fail_step "crash" (Printf.sprintf "point %d never fired" k)
  in
  let audit_ok =
    match Audit_log.of_bytes !audit_bytes with
    | Ok log -> Audit_log.verify log = Ok ()
    | Error _ -> false
  in
  let rclock = Clock.create () in
  let rdev = Block_device.create ~config:pd_config ~clock:rclock () in
  Block_device.restore rdev image;
  match Dbfs.mount rdev with
  | Error e ->
      {
        cp_write = k;
        cp_step = step_of spans k;
        cp_plan = plan_str;
        cp_replay_stop = "mount failed: " ^ e;
        cp_quarantined = 0;
        cp_residue_free = false;
        cp_audit_ok = audit_ok;
        cp_fsck_clean = false;
      }
  | Ok store ->
      let replay_stop =
        match Dbfs.replay_report store with
        | Some s -> Journal_ring.stop_reason_to_string s.Journal_ring.stop_reason
        | None -> "none"
      in
      let rep = Dbfs.fsck_repair store in
      let residue_free =
        List.for_all
          (fun (p : Population.person) ->
            live_subject store p
            || Block_device.scan rdev p.Population.email = [])
          people
      in
      {
        cp_write = k;
        cp_step = step_of spans k;
        cp_plan = plan_str;
        cp_replay_stop = replay_stop;
        cp_quarantined = List.length rep.Dbfs.rr_quarantined;
        cp_residue_free = residue_free;
        cp_audit_ok = audit_ok;
        cp_fsck_clean = rep.Dbfs.rr_clean;
      }

(* ------------------------------------------------------------------ *)
(* Named fault scenarios                                               *)

let scenario name pass detail = { sc_name = name; sc_pass = pass; sc_detail = detail }

let first_pd store (p : Population.person) =
  match Dbfs.pds_of_subject store ~actor p.Population.subject_id with
  | Ok (pd :: _) -> pd
  | Ok [] -> fail_step "scenario" ("no pd for " ^ p.Population.subject_id)
  | Error e -> fail_step "scenario" (Dbfs.error_to_string e)

(* Bit rot in a record extent: a remounted (cold-cache) store must refuse
   the read, fsck must flag it, and repair must quarantine and come back
   clean. *)
let scenario_record_bit_rot ~seed people =
  let m = boot ~seed in
  List.iter (collect_person m) people;
  let p0 = List.hd people in
  let pd = first_pd (Machine.dbfs m) p0 in
  let rec_blocks =
    match Dbfs.entry_blocks (Machine.dbfs m) ~actor pd with
    | Ok (rb, _) -> rb
    | Error e -> fail_step "scenario" (Dbfs.error_to_string e)
  in
  match Dbfs.crash_and_remount (Machine.dbfs m) with
  | Error e -> scenario "record-bit-rot" false ("remount failed: " ^ e)
  | Ok store ->
      let dev = Dbfs.device store in
      Block_device.unsafe_flip dev ~block:(List.hd rec_blocks) ~byte:10 ~bit:3;
      let read_detects =
        match Dbfs.get_record store ~actor pd with
        | Error (Dbfs.Corrupt _) -> true
        | _ -> false
      in
      let fsck_detects = Result.is_error (Dbfs.fsck store) in
      let rep = Dbfs.fsck_repair store in
      let quarantined = List.mem_assoc pd rep.Dbfs.rr_quarantined in
      scenario "record-bit-rot"
        (read_detects && fsck_detects && quarantined && rep.Dbfs.rr_clean)
        (Printf.sprintf
           "read_detects=%b fsck_detects=%b quarantined=%b clean=%b"
           read_detects fsck_detects quarantined rep.Dbfs.rr_clean)

(* Secondary-index damage: fsck must flag the dropped posting and repair
   must rebuild the index from the surviving records. *)
let scenario_index_damage ~seed people =
  let m = boot ~seed in
  List.iter (collect_person m) people;
  let store = Machine.dbfs m in
  let pd = first_pd store (List.hd people) in
  let tampered = Dbfs.unsafe_tamper_index store pd in
  let fsck_detects = Result.is_error (Dbfs.fsck store) in
  let rep = Dbfs.fsck_repair store in
  let rebuilt = Dbfs.index_dump store = Dbfs.rebuilt_index_dump store in
  scenario "index-damage"
    (tampered && fsck_detects && rep.Dbfs.rr_clean && rebuilt)
    (Printf.sprintf "tampered=%b fsck_detects=%b clean=%b rebuilt=%b" tampered
       fsck_detects rep.Dbfs.rr_clean rebuilt)

(* Bit rot in an on-device index node page: after a checkpoint the paged
   trees are the durable index, so a cold remount must hit the flipped
   page's checksum, fsck must flag it, and repair must rebuild the trees
   from the surviving entries — leaving no residue of the damaged page
   (the stale heap half is zeroed) and the exact same index facts as
   before the damage. *)
let scenario_index_page_rot ~seed people =
  let m = boot ~seed in
  List.iter (collect_person m) people;
  let store0 = Machine.dbfs m in
  Dbfs.checkpoint store0;
  let before = Dbfs.index_dump store0 in
  (* enumerate a node page while warm: the cold store must first see the
     damage through its (empty) page cache, never a stale copy *)
  let block =
    match Dbfs.index_page_blocks store0 with
    | (b, _) :: _ -> b
    | [] -> fail_step "scenario" "no index node pages after checkpoint"
  in
  match Dbfs.crash_and_remount store0 with
  | Error e -> scenario "index-page-rot" false ("remount failed: " ^ e)
  | Ok store ->
      let dev = Dbfs.device store in
      Block_device.unsafe_flip dev ~block ~byte:8 ~bit:5;
      let fsck_detects =
        match Dbfs.fsck store with
        | Ok () -> false
        | Error problems ->
            List.exists
              (fun p ->
                (* the paged-tree checksum note, not a derived symptom *)
                String.length p >= 10 && String.sub p 0 10 = "index page")
              problems
      in
      let rep = Dbfs.fsck_repair store in
      let rebuilt =
        Dbfs.index_dump store = before
        && Dbfs.index_dump store = Dbfs.rebuilt_index_dump store
      in
      (* no residue: the damaged page's block was returned to the zeroed
         stale half by the repair checkpoint *)
      let bs = (Block_device.config dev).Block_device.block_size in
      let residue_free = Block_device.read dev block = String.make bs '\000' in
      scenario "index-page-rot"
        (fsck_detects && rep.Dbfs.rr_clean && rebuilt && residue_free)
        (Printf.sprintf "fsck_detects=%b clean=%b rebuilt=%b residue_free=%b"
           fsck_detects rep.Dbfs.rr_clean rebuilt residue_free)

(* A transient device error on a record block must be ridden out by the
   bounded retry loop, invisibly to the caller. *)
let scenario_transient_retry ~seed people =
  let m = boot ~seed in
  List.iter (collect_person m) people;
  let pd = first_pd (Machine.dbfs m) (List.hd people) in
  let rec_blocks =
    match Dbfs.entry_blocks (Machine.dbfs m) ~actor pd with
    | Ok (rb, _) -> rb
    | Error e -> fail_step "scenario" (Dbfs.error_to_string e)
  in
  match Dbfs.crash_and_remount (Machine.dbfs m) with
  | Error e -> scenario "transient-retry" false ("remount failed: " ^ e)
  | Ok store ->
      let dev = Dbfs.device store in
      Block_device.inject_transient_fault dev (List.hd rec_blocks) ~count:2;
      let ok = Result.is_ok (Dbfs.get_record store ~actor pd) in
      let retries = Stats.Counter.get (Dbfs.stats store) "fault_retries" in
      scenario "transient-retry"
        (ok && retries > 0)
        (Printf.sprintf "read_ok=%b retries=%d" ok retries)

(* A torn vectored write (nothing persisted, no acknowledgement) must be
   retried to success by the write path. *)
let scenario_torn_write_retry ~seed people =
  let m = boot ~seed in
  List.iter (collect_person m) people;
  let dev = Machine.pd_device m in
  let before = Stats.Counter.get (Dbfs.stats (Machine.dbfs m)) "fault_retries" in
  let plan = Fault_plan.create () in
  Fault_plan.on_write plan ~nth:1 (Fault_plan.Torn_write { keep_runs = 0 });
  Block_device.set_fault_plan dev (Some plan);
  let flip =
    Machine.set_consent m
      ~subject:(List.hd people).Population.subject_id
      ~purpose:"marketing" Membrane.Denied
  in
  Block_device.set_fault_plan dev None;
  let retries =
    Stats.Counter.get (Dbfs.stats (Machine.dbfs m)) "fault_retries" - before
  in
  scenario "torn-write-retry"
    (Result.is_ok flip && retries > 0)
    (Printf.sprintf "write_ok=%b retries=%d" (Result.is_ok flip) retries)

(* A permanent fault under a write flips the store into degraded
   read-only mode: further mutations refused, right of access still
   served; fsck ~repair clears it once the medium is replaced. *)
let scenario_degraded_mode ~seed people =
  let m = boot ~seed in
  let head, tail =
    match people with p :: q :: rest -> ([ p; q ], rest) | _ -> (people, [])
  in
  List.iter (collect_person m) head;
  let store = Machine.dbfs m in
  let dev = Machine.pd_device m in
  let lay = Dbfs.layout store in
  (* fault every free record-zone block so the next insert must hit one *)
  let faulted = ref [] in
  for b = lay.Dbfs.l_rec_start to lay.Dbfs.l_high_start - 1 do
    if not (Block_device.is_written dev b) then begin
      Block_device.inject_fault dev b;
      faulted := b :: !faulted
    end
  done;
  let victim = match tail with p :: _ -> p | [] -> List.hd people in
  let insert_failed =
    match collect_person m victim with
    | () -> false
    | exception Failure _ -> true
  in
  let degraded_now = Dbfs.degraded store <> None in
  let write_refused =
    match
      Machine.set_consent m
        ~subject:(List.hd people).Population.subject_id ~purpose:"marketing"
        Membrane.Denied
    with
    | Error _ -> true
    | Ok _ -> false
  in
  let access_served =
    Result.is_ok
      (Machine.right_of_access m
         ~subject:(List.hd people).Population.subject_id)
  in
  List.iter (Block_device.clear_fault dev) !faulted;
  let rep = Dbfs.fsck_repair store in
  let recovered = Dbfs.degraded store = None in
  let writes_back =
    match collect_person m victim with
    | () -> true
    | exception Failure _ -> false
  in
  scenario "degraded-mode"
    (insert_failed && degraded_now && write_refused && access_served
    && rep.Dbfs.rr_clean && recovered && writes_back)
    (Printf.sprintf
       "insert_failed=%b degraded=%b write_refused=%b access_served=%b \
        clean=%b recovered=%b writes_back=%b"
       insert_failed degraded_now write_refused access_served rep.Dbfs.rr_clean
       recovered writes_back)

(* ------------------------------------------------------------------ *)
(* Log-structured store scenarios: crashes inside a compaction pass and
   inside a group-commit window, on a segmented machine.               *)

let boot_seg ~seed ~window =
  let m =
    Machine.boot ~seed:(Int64.of_int seed) ~pd_device:pd_config
      ~npd_device:npd_config ~segmented:true ~group_commit_window:window ()
  in
  match Machine.load_declarations m Population.type_declaration with
  | Ok _ -> m
  | Error e -> fail_step "load_declarations" e

(* Collect everyone, erase one subject (the destruction purge runs
   here, so nothing after it scrubs for free), then churn the survivors
   round by round until some sealed segment holds a live minority —
   a genuine compaction victim with relocation AND destruction work to
   crash inside of.  Adaptive because the campaign runs at several
   population sizes and the segment boundary moves with them. *)
let seg_setup ~seed ~window people =
  let m = boot_seg ~seed ~window in
  List.iter (collect_person m) people;
  (match
     Machine.right_to_erasure m
       ~subject:(List.hd people).Population.subject_id
   with
  | Ok _ -> ()
  | Error e -> fail_step "erase" e);
  let store = Machine.dbfs m in
  let churners = List.tl people in
  let victim_ready () =
    List.exists
      (fun (_, st, used, live, _) ->
        st = "sealed" && live > 0 && live * 100 <= used * 75)
      (Dbfs.segment_table store)
  in
  let rounds = ref 0 in
  while (not (victim_ready ())) && !rounds < 30 do
    incr rounds;
    List.iter
      (fun (p : Population.person) ->
        let pd = first_pd store p in
        match Dbfs.update_record store ~actor pd (Population.record_of p) with
        | Ok () -> ()
        | Error e -> fail_step "churn" (Dbfs.error_to_string e))
      churners
  done;
  if not (victim_ready ()) then
    fail_step "churn" "no compactable segment after 30 rounds";
  m

(* Post-crash acceptance shared by the segmented scenarios: the remounted
   image must repair clean, keep every survivor readable, and hold no
   plaintext of any non-live subject. *)
let seg_recover_checks store rdev people =
  let rep = Dbfs.fsck_repair store in
  let residue_free =
    List.for_all
      (fun (p : Population.person) ->
        live_subject store p
        || Block_device.scan rdev p.Population.email = [])
      people
  in
  let survivors_ok =
    List.for_all
      (fun (p : Population.person) ->
        match Dbfs.pds_of_subject store ~actor p.Population.subject_id with
        | Error _ -> false
        | Ok pds ->
            List.for_all
              (fun pd ->
                match Dbfs.entry_info store ~actor pd with
                | Ok (_, _, true) -> true (* erased: sealed envelope *)
                | Ok (_, _, false) ->
                    Result.is_ok (Dbfs.get_record store ~actor pd)
                | Error _ -> false)
              pds)
      people
  in
  (rep, residue_free, survivors_ok)

(* Crash at write ordinal [pick total] inside an explicit compaction
   pass.  Two instances bracket the pass: ordinal 1 lands in the
   relocation phase (payload written, journal record possibly not yet
   durable), the penultimate ordinal lands in the destruction phase
   (relocations durable, victims being zeroed). *)
let scenario_crash_mid_compaction ~seed people name pick =
  (* reference pass: how many device writes does this compaction do? *)
  let m0 = seg_setup ~seed ~window:1 people in
  let dev0 = Machine.pd_device m0 in
  let plan0 = Fault_plan.create () in
  Block_device.set_fault_plan dev0 (Some plan0);
  let victims =
    Dbfs.compact (Machine.dbfs m0) ~max_victims:16 ~liveness_pct:75.0
  in
  let total = Fault_plan.writes_seen plan0 in
  Block_device.set_fault_plan dev0 None;
  if victims = 0 || total = 0 then
    scenario name false
      (Printf.sprintf "compaction did no work (victims=%d writes=%d)" victims
         total)
  else begin
    let k = max 1 (min total (pick total)) in
    let m = seg_setup ~seed ~window:1 people in
    let dev = Machine.pd_device m in
    let plan = Fault_plan.create () in
    Fault_plan.crash_after_writes plan k;
    Block_device.set_fault_plan dev (Some plan);
    ignore (Dbfs.compact (Machine.dbfs m) ~max_victims:16 ~liveness_pct:75.0);
    match Block_device.crash_image dev with
    | None ->
        scenario name false
          (Printf.sprintf "crash at write %d/%d never fired" k total)
    | Some image -> (
        let rclock = Clock.create () in
        let rdev = Block_device.create ~config:pd_config ~clock:rclock () in
        Block_device.restore rdev image;
        match Dbfs.mount rdev with
        | Error e -> scenario name false ("mount failed: " ^ e)
        | Ok store ->
            let rep, residue_free, survivors_ok =
              seg_recover_checks store rdev people
            in
            scenario name
              (rep.Dbfs.rr_clean && residue_free && survivors_ok)
              (Printf.sprintf
                 "crash@%d/%d clean=%b residue_free=%b survivors_ok=%b \
                  quarantined=%d"
                 k total rep.Dbfs.rr_clean residue_free survivors_ok
                 (List.length rep.Dbfs.rr_quarantined)))
  end

(* Crash inside the batched ingest of a group-commit store: buffered
   journal records that never flushed are simply absent after replay —
   the store must come back clean with every durable entry intact. *)
let scenario_crash_mid_group_commit ~seed people =
  let name = "group-commit-crash" in
  let window = 4 in
  (* reference: write ordinals spanned by the batched collect phase *)
  let m0 = boot_seg ~seed ~window in
  let dev0 = Machine.pd_device m0 in
  let plan0 = Fault_plan.create () in
  Block_device.set_fault_plan dev0 (Some plan0);
  List.iter (collect_person m0) people;
  let total = Fault_plan.writes_seen plan0 in
  Block_device.set_fault_plan dev0 None;
  if total = 0 then scenario name false "collect phase performed no writes"
  else begin
    let k = max 1 (total * 2 / 3) in
    let m = boot_seg ~seed ~window in
    let dev = Machine.pd_device m in
    let plan = Fault_plan.create () in
    Fault_plan.crash_after_writes plan k;
    Block_device.set_fault_plan dev (Some plan);
    List.iter (collect_person m) people;
    let batched =
      Stats.Counter.get (Dbfs.stats (Machine.dbfs m)) "committed_batches"
    in
    match Block_device.crash_image dev with
    | None ->
        scenario name false
          (Printf.sprintf "crash at write %d/%d never fired" k total)
    | Some image -> (
        let rclock = Clock.create () in
        let rdev = Block_device.create ~config:pd_config ~clock:rclock () in
        Block_device.restore rdev image;
        match Dbfs.mount rdev with
        | Error e -> scenario name false ("mount failed: " ^ e)
        | Ok store ->
            let rep, residue_free, survivors_ok =
              seg_recover_checks store rdev people
            in
            scenario name
              (batched > 0 && rep.Dbfs.rr_clean && residue_free
             && survivors_ok)
              (Printf.sprintf
                 "crash@%d/%d batches=%d clean=%b residue_free=%b \
                  survivors_ok=%b"
                 k total batched rep.Dbfs.rr_clean residue_free survivors_ok))
  end

let scenarios ~seed people =
  [
    scenario_record_bit_rot ~seed people;
    scenario_index_damage ~seed people;
    scenario_index_page_rot ~seed people;
    scenario_transient_retry ~seed people;
    scenario_torn_write_retry ~seed people;
    scenario_degraded_mode ~seed people;
    scenario_crash_mid_compaction ~seed people "compaction-crash-relocate"
      (fun _ -> 1);
    scenario_crash_mid_compaction ~seed people "compaction-crash-destroy"
      (fun total -> total - 1);
    scenario_crash_mid_group_commit ~seed people;
  ]

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                     *)

let run ?(seed = 7) ?(subjects = 6) ?max_points () =
  let subjects = max 4 subjects in
  let people = people_of ~seed ~subjects in
  let spans = reference_run ~seed people in
  let total = match List.rev spans with (_, w) :: _ -> w | [] -> 0 in
  if total = 0 then fail_step "reference" "workload performed no writes";
  let ordinals =
    let all = List.init total (fun i -> i + 1) in
    match max_points with
    | Some cap when cap > 0 && total > cap ->
        (* even stride over [1, total], always including the last write *)
        let stride = float_of_int total /. float_of_int cap in
        List.init cap (fun i ->
            min total (int_of_float (ceil (float_of_int (i + 1) *. stride))))
        |> List.sort_uniq compare
    | _ -> all
  in
  let points = List.map (run_point ~seed ~spans people) ordinals in
  {
    fc_seed = seed;
    fc_subjects = subjects;
    fc_steps = spans;
    fc_total_writes = total;
    fc_sampled = List.length ordinals < total;
    fc_points = points;
    fc_scenarios = scenarios ~seed people;
  }

let pass_rate_pct r =
  let checks =
    List.concat_map
      (fun p -> [ p.cp_residue_free; p.cp_audit_ok; p.cp_fsck_clean ])
      r.fc_points
  in
  if checks = [] then 0.0
  else
    100.0
    *. float_of_int (List.length (List.filter Fun.id checks))
    /. float_of_int (List.length checks)

let all_pass r =
  pass_rate_pct r = 100.0 && List.for_all (fun s -> s.sc_pass) r.fc_scenarios

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let to_json ?wall_ms r =
  let point p =
    Json.Obj
      [
        ("write", Json.Num (float_of_int p.cp_write));
        ("step", Json.Str p.cp_step);
        ("plan", Json.Str p.cp_plan);
        ("replay_stop", Json.Str p.cp_replay_stop);
        ("quarantined", Json.Num (float_of_int p.cp_quarantined));
        ("residue_free", Json.Bool p.cp_residue_free);
        ("audit_ok", Json.Bool p.cp_audit_ok);
        ("fsck_clean", Json.Bool p.cp_fsck_clean);
      ]
  in
  let scen s =
    Json.Obj
      [
        ("name", Json.Str s.sc_name);
        ("pass", Json.Bool s.sc_pass);
        ("detail", Json.Str s.sc_detail);
      ]
  in
  Json.Obj
    ([
       ("schema", Json.Str "rgpdos-fault-campaign/1");
       ("seed", Json.Num (float_of_int r.fc_seed));
       ("subjects", Json.Num (float_of_int r.fc_subjects));
       ( "steps",
         Json.List
           (List.map
              (fun (name, upto) ->
                Json.Obj
                  [
                    ("name", Json.Str name);
                    ("writes_upto", Json.Num (float_of_int upto));
                  ])
              r.fc_steps) );
       ("total_writes", Json.Num (float_of_int r.fc_total_writes));
       ("crash_points", Json.Num (float_of_int (List.length r.fc_points)));
       ("sampled", Json.Bool r.fc_sampled);
       ("pass_rate_pct", Json.Num (pass_rate_pct r));
       ("points", Json.List (List.map point r.fc_points));
       ("scenarios", Json.List (List.map scen r.fc_scenarios));
     ]
    @ match wall_ms with None -> [] | Some w -> [ ("wall_ms", Json.Num w) ])

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "fault campaign: seed=%d subjects=%d total_writes=%d crash_points=%d%s\n"
       r.fc_seed r.fc_subjects r.fc_total_writes
       (List.length r.fc_points)
       (if r.fc_sampled then " (sampled)" else " (exhaustive)"));
  Buffer.add_string b
    (Printf.sprintf "invariant pass rate: %.1f%%\n" (pass_rate_pct r));
  let count f = List.length (List.filter f r.fc_points) in
  Buffer.add_string b
    (Printf.sprintf
       "  residue-free %d/%d   audit-chain %d/%d   fsck-clean %d/%d\n"
       (count (fun p -> p.cp_residue_free))
       (List.length r.fc_points)
       (count (fun p -> p.cp_audit_ok))
       (List.length r.fc_points)
       (count (fun p -> p.cp_fsck_clean))
       (List.length r.fc_points));
  List.iter
    (fun p ->
      if not (p.cp_residue_free && p.cp_audit_ok && p.cp_fsck_clean) then
        Buffer.add_string b
          (Printf.sprintf
             "  FAIL at write %d (%s) %s: residue_free=%b audit=%b fsck=%b \
              replay=%s\n"
             p.cp_write p.cp_step p.cp_plan p.cp_residue_free p.cp_audit_ok
             p.cp_fsck_clean p.cp_replay_stop))
    r.fc_points;
  Buffer.add_string b "scenarios:\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "  %-18s %s  (%s)\n" s.sc_name
           (if s.sc_pass then "PASS" else "FAIL")
           s.sc_detail))
    r.fc_scenarios;
  Buffer.contents b
