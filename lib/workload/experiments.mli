(** The evaluation harness: one function per experiment of DESIGN.md §3.

    The paper is a vision paper with no quantitative evaluation, so these
    experiments materialise its {i claims} (see EXPERIMENTS.md for the
    paper-vs-measured record).  Every function is deterministic from its
    parameters, returns a structured result, and has a [render] companion
    producing the table the bench binary prints.  `dune runtest` runs each
    at small scale and asserts the qualitative shape. *)

(** {1 E1 — DED pipeline breakdown} *)

type e1_result = {
  e1_subjects : int;
  e1_stage_ns : (string * int) list;  (** per-stage simulated ns *)
  e1_total_ns : int;
  e1_device : (string * int) list;
      (** PD-device counters over the invoke alone (stats are reset after
          the population load): reads, merged_runs, bytes_read, ... *)
}

val e1_ded_stages :
  ?subjects:int ->
  ?vectored:bool ->
  ?async:bool ->
  ?queue_depth:int ->
  ?cores:int ->
  unit ->
  e1_result
(** [?vectored:false] reruns the same pipeline with the device's scalar
    cost model (one seek per block) — the before/after pair behind
    [BENCH_vectored_io.json].  [?cores] bounds the parallel [ded_execute]
    fan-out ([~cores:1] is the sequential before-run of the
    [BENCH_parallel_scale.json] pair; the default is the Host core
    count).  [?async] boots the device with submission/completion queues
    of [?queue_depth] slots — the same-build A/B pair behind
    [BENCH_async_io.json]; all in-flight charge is drained before the
    totals are read, so async-vs-sync compares completed work. *)

val render_e1 : e1_result -> string

(** {1 E2 — GDPRBench-style comparison} *)

type e2_row = {
  e2_backend : string;
  e2_role : string;
  e2_ops : int;
  e2_errors : int;
  e2_unsupported : int;
  e2_sim_ms : float;
  e2_kops_per_sim_s : float;
}

val e2_gdprbench :
  ?subjects:int -> ?ops_per_role:int -> unit -> e2_row list
val render_e2 : e2_row list -> string

(** {1 E2b — processor-role scaling sweep} *)

type e2b_row = {
  e2b_backend : string;
  e2b_subjects : int;
  e2b_sim_ms : float;  (** simulated time for the fixed op stream *)
}

val e2b_scaling :
  ?sizes:int list -> ?ops:int -> unit -> e2b_row list
(** The processor role (purpose queries dominate) at growing population
    sizes: shows how the three systems scale with the amount of stored PD
    and where rgpdOS's membrane overhead sits relative to the baseline's
    row walks. *)

val render_e2b : e2b_row list -> string

(** {1 E3 — right to be forgotten, forensically} *)

type e3_row = {
  e3_system : string;
  e3_deleted : int;
  e3_leaked_subjects : int;  (** subjects whose secret is still on the medium *)
  e3_sim_ms : float;         (** cost of the deletion pass *)
  e3_authority_recovers : bool;  (** escrow path works (rgpdOS only) *)
}

val e3_erasure : ?subjects:int -> ?erase_fraction:float -> unit -> e3_row list
val render_e3 : e3_row list -> string

(** {1 E4 — right of access} *)

type e4_row = {
  e4_records_per_subject : int;
  e4_sim_us : float;
  e4_export_complete : bool;  (** every stored record present in the export *)
}

val e4_access : ?records_per_subject:int list -> unit -> e4_row list
val render_e4 : e4_row list -> string

(** {1 E5 — storage-limitation sweep} *)

type e5_row = {
  e5_records : int;
  e5_expired : int;
  e5_removed : int;
  e5_sim_ms : float;
}

val e5_ttl : ?sizes:int list -> ?expired_fraction:float -> unit -> e5_row list
val render_e5 : e5_row list -> string

(** {1 E6 — membrane filter selectivity} *)

type e6_row = {
  e6_grant_rate : float;
  e6_consumed : int;
  e6_filtered : int;
  e6_sim_us : float;
}

val e6_filter : ?subjects:int -> ?rates:float list -> unit -> e6_row list
val render_e6 : e6_row list -> string

(** {1 E7 — cross-purpose PD leaks} *)

type e7_result = {
  e7_baseline_dangling_reads : int;
  e7_baseline_leaks : int;       (** cross-purpose reads that succeeded *)
  e7_rgpdos_attacks : int;
  e7_rgpdos_leaks : int;         (** attacks that obtained PD (must be 0) *)
  e7_rgpdos_blocked : int;
}

val e7_leak : ?attacks:int -> unit -> e7_result
val render_e7 : e7_result -> string

(** {1 E8 — ps_register checks} *)

type e8_result = {
  e8_submitted : int;
  e8_accepted : int;
  e8_rejected_no_purpose : int;
  e8_alerted : int;
  e8_misclassified : int;  (** wrong verdict vs ground truth (must be 0) *)
}

val e8_register : unit -> e8_result
val render_e8 : e8_result -> string

(** {1 E9 — purpose-kernel scheduling} *)

type e9_row = {
  e9_config : string;    (** e.g. "rgpd=3000mcpu" *)
  e9_pd_jobs : int;
  e9_npd_jobs : int;
  e9_makespan_ms : float;
  e9_general_busy_ms : float;
  e9_rgpd_busy_ms : float;
  e9_pd_on_general : bool;  (** must be false: the separation invariant *)
}

val e9_kernels : ?jobs:int -> unit -> e9_row list
val render_e9 : e9_row list -> string

(** {1 E11 — consent churn and copy consistency} *)

type e11_result = {
  e11_subjects : int;
  e11_copies : int;
  e11_flips : int;
  e11_membranes_updated : int;  (** total membrane writes incl. copies *)
  e11_sim_ms : float;
  e11_inconsistent_copies : int;  (** copies disagreeing with their lineage
                                      root after the churn — must be 0 *)
}

val e11_consent_churn :
  ?subjects:int -> ?copy_fraction:float -> ?flips:int -> unit -> e11_result
(** Subjects repeatedly grant/withdraw consents while a fraction of the PD
    has live copies; the paper requires membrane consistency across all
    copies of the same PD, so every flip must propagate through the
    lineage. *)

val render_e11 : e11_result -> string

(** {1 A1 — ablation: two-phase vs single-phase DBFS fetching} *)

type a1_row = {
  a1_mode : string;
  a1_grant_rate : float;
  a1_sim_us : float;
  a1_overread : int;
      (** records read from DBFS despite a refusing membrane *)
}

val a1_fetch_mode :
  ?subjects:int -> ?rates:float list -> unit -> a1_row list
(** The design-choice ablation DESIGN.md §4 calls out: the paper's
    two-phase pipeline (membranes first) never reads refused PD but pays
    two DBFS round trips; a single-phase engine fetches records with their
    membranes — cheaper at high grant rates, but it reads PD it then has
    to discard. *)

val render_a1 : a1_row list -> string

(** {1 A2 — ablation: DED placement (host / PIM / PIS)} *)

type a2_row = {
  a2_location : string;
  a2_cpu_cost_us : float;  (** per-record compute intensity *)
  a2_sim_ms : float;
}

val a2_placement :
  ?subjects:int -> ?cpu_costs_ns:int list -> unit -> a2_row list
(** §3(3): "DED could be executed in multiple locations with the help of
    Processing in Memory and Processing in Storage".  The cost model gives
    near-data locations free transfers but slower cores; the sweep over
    compute intensity locates the crossover. *)

val render_a2 : a2_row list -> string

(** {1 E10 — audit-chain verification cost} *)

type e10_row = {
  e10_entries : int;
  e10_verify_wall_ms : float;
  e10_tamper_detected : bool;
}

val e10_audit : ?sizes:int list -> unit -> e10_row list
val render_e10 : e10_row list -> string

(** {1 E-index — secondary-index pushdown vs full-type scans} *)

type eidx_select_row = {
  eidx_population : int;
  eidx_probe : string;             (** rendered predicate *)
  eidx_selectivity_pct : float;    (** designed match fraction, percent *)
  eidx_matches : int;
  eidx_scan_ns : int;              (** simulated ns, [~use_indexes:false] *)
  eidx_index_ns : int;             (** simulated ns, [~use_indexes:true] *)
  eidx_speedup : float;
}

type eidx_ttl_row = {
  eidx_ttl_population : int;
  eidx_ttl_expired : int;
  eidx_ttl_full_ns : int;          (** legacy full membrane scan *)
  eidx_ttl_incr_ns : int;          (** expiry-queue incremental sweep *)
  eidx_ttl_speedup : float;
}

type eidx_result = {
  eidx_select : eidx_select_row list;
  eidx_ttl : eidx_ttl_row list;
}

val e_index_select : ?sizes:int list -> unit -> eidx_select_row list
(** Selectivity sweep over a type with three indexed int fields designed
    so an Eq probe matches exactly 0.1% / 1% / 10% of the population
    (plus [True] at 100%).  Each probe runs {!Dbfs.select} twice on the
    same store — full scan ([~use_indexes:false]) vs index pushdown —
    and asserts both return identical pd_ids. *)

val e_index_ttl :
  ?sizes:int list -> ?expired:int -> unit -> eidx_ttl_row list
(** E5's aged population, swept twice from identical boots: the legacy
    full membrane scan vs the TTL expiry queue.  The expired cohort is a
    fixed count across population sizes, so the incremental sweep's
    O(expired) cost stays flat while the full scan grows
    O(population). *)

val e_index : ?sizes:int list -> ?ttl_sizes:int list -> unit -> eidx_result
val render_e_index : eidx_result -> string
