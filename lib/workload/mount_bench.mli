(** Mount-scale benchmark for the paged DBFS indexes and the bounded
    cache.

    Two claims, one artifact (BENCH_mount_scale.json):

    - a {e clean} remount touches O(1) device blocks regardless of
      population — the index trees are attached by root pointer, not
      decoded, and the allocation bitmap hydrates lazily;
    - a Zipf-skewed Art.15 (export) / Art.17 (erasure) / DED-select
      workload over the largest population completes inside a fixed
      cache-entry budget, with eviction semantically invisible. *)

type mount_row = {
  mb_subjects : int;
  mb_build_sim_ms : float;  (** populate + checkpoint, simulated *)
  mb_mount_reads : int;  (** device blocks read by the clean mount *)
  mb_mount_sim_us : float;  (** simulated mount latency *)
  mb_resident_after_mount : int;
      (** cache entries the mount left behind *)
  mb_index_pages : int;  (** node pages of the checkpointed trees *)
}

type zipf_row = {
  zb_subjects : int;
  zb_ops : int;
  zb_budget : int;  (** fixed cache-entry budget for the run *)
  zb_resident_max : int;
      (** high-water resident entries — must stay [<= zb_budget] *)
  zb_hits : int;
  zb_misses : int;
  zb_evictions : int;
  zb_page_reads : int;  (** index node-page reads, hit or miss *)
  zb_sim_ms : float;
  zb_ops_ok : bool;  (** every workload operation returned [Ok] *)
}

type result = { mb_rows : mount_row list; mb_zipf : zipf_row }

val run : ?sizes:int list -> ?ops:int -> ?budget:int -> unit -> result
(** One mount row per population in [sizes] (deduplicated, ascending;
    default 10^3 → 10^6), then the Zipfian workload of [ops] operations
    (default 20,000) over the largest population under [budget] cache
    entries (default 4,096).  Deterministic: fixed seeds, simulated
    clocks. *)

val read_ratio : result -> float
(** Max/min clean-mount device reads across the rows — the
    population-independence headline the artifact gates on (1.0 when
    mounts are exactly O(1)). *)

val render : result -> string
