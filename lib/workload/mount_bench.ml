(* Mount-scale benchmark: the paged on-device indexes must keep a clean
   remount O(1) in device block reads regardless of population, and the
   bounded cache must carry a Zipf-skewed Art.15/17 + DED-select
   workload inside a fixed entry budget.

   For each population n the driver formats a device, inserts n subjects
   (one indexed record each), checkpoints, snapshots the image onto a
   fresh device (a cold restart: every cache dropped) and mounts it,
   recording the device reads, simulated latency and resident cache
   entries of the mount alone.  The largest population then runs the
   skewed workload under the fixed budget, tracking the high-water
   resident count and the hit/miss/eviction counters. *)

module Clock = Rgpdos_util.Clock
module Prng = Rgpdos_util.Prng
module Stats = Rgpdos_util.Stats
module Block_device = Rgpdos_block.Block_device
module Dbfs = Rgpdos_dbfs.Dbfs
module Schema = Rgpdos_dbfs.Schema
module Value = Rgpdos_dbfs.Value
module Query = Rgpdos_dbfs.Query
module Membrane = Rgpdos_membrane.Membrane

type mount_row = {
  mb_subjects : int;
  mb_build_sim_ms : float;       (* populate + checkpoint, simulated *)
  mb_mount_reads : int;          (* device blocks read by the clean mount *)
  mb_mount_sim_us : float;       (* simulated mount latency *)
  mb_resident_after_mount : int; (* cache entries the mount left behind *)
  mb_index_pages : int;          (* node pages of the checkpointed trees *)
}

type zipf_row = {
  zb_subjects : int;
  zb_ops : int;
  zb_budget : int;
  zb_resident_max : int;  (* high-water resident entries over the run *)
  zb_hits : int;
  zb_misses : int;
  zb_evictions : int;
  zb_page_reads : int;    (* index node-page reads (hit or miss) *)
  zb_sim_ms : float;
  zb_ops_ok : bool;       (* every operation returned Ok *)
}

type result = { mb_rows : mount_row list; mb_zipf : zipf_row }

let actor = "ded"

let fail what e = failwith (Printf.sprintf "Mount_bench %s: %s" what e)

let bucket_mod = 997

let schema () =
  match
    Schema.make ~name:"person"
      ~fields:
        [
          { Schema.fname = "email"; ftype = Value.TString; required = true };
          { Schema.fname = "bucket"; ftype = Value.TInt; required = true };
        ]
      ~default_consents:[ ("service", Membrane.All) ]
      ~collection:[ ("web_form", "signup_form.html") ]
      ~default_ttl:(2 * Clock.year)
      ~indexed_fields:[ "email"; "bucket" ] ()
  with
  | Ok s -> s
  | Error e -> fail "schema" e

let subject_of i = Printf.sprintf "sub-%07d" i
let email_of i = Printf.sprintf "u%07d@example.test" i

(* Data region needs ~2 blocks per subject; the journal is sized so the
   whole one-pass build triggers at most a couple of ring-overflow
   checkpoints (each one rewrites the trees: O(population)). *)
let config_for n =
  let journal = max 256 (min 65_536 (n / 8)) in
  {
    Block_device.default_config with
    Block_device.block_count = max 16_384 ((n * 8) + journal + 4_096);
  }

let journal_blocks_for n = max 256 (min 65_536 (n / 8))

let build ~n =
  let clock = Clock.create () in
  let config = config_for n in
  let dev = Block_device.create ~config ~clock () in
  let t = Dbfs.format dev ~journal_blocks:(journal_blocks_for n) in
  let schema = schema () in
  (match Dbfs.create_type t ~actor schema with
  | Ok () -> ()
  | Error e -> fail "create_type" (Dbfs.error_to_string e));
  for i = 0 to n - 1 do
    let subject = subject_of i in
    let record =
      [
        ("email", Value.VString (email_of i));
        ("bucket", Value.VInt (i mod bucket_mod));
      ]
    in
    match
      Dbfs.insert t ~actor ~subject ~type_name:"person" ~record
        ~membrane_of:(fun ~pd_id ->
          Membrane.make ~pd_id ~type_name:"person" ~subject_id:subject
            ~origin:schema.Schema.default_origin
            ~consents:schema.Schema.default_consents
            ~created_at:(Clock.now clock) ?ttl:schema.Schema.default_ttl
            ~sensitivity:schema.Schema.default_sensitivity
            ~collection:schema.Schema.collection ())
    with
    | Ok _ -> ()
    | Error e -> fail "insert" (Dbfs.error_to_string e)
  done;
  Dbfs.checkpoint t;
  (dev, config, clock)

(* Cold restart: copy the image onto a fresh device (fresh clock, fresh
   stats) and mount it.  Returns the store plus the mount's read count
   and simulated latency. *)
let cold_mount ~config image =
  let clock = Clock.create () in
  let dev = Block_device.create ~config ~clock () in
  Block_device.restore dev image;
  Block_device.reset_stats dev;
  let t0 = Clock.now clock in
  match Dbfs.mount dev with
  | Error e -> fail "mount" e
  | Ok store ->
      let reads = Stats.Counter.get (Block_device.stats dev) "reads" in
      let sim_ns = Clock.now clock - t0 in
      (store, reads, sim_ns)

let measure_mount ~n =
  let dev, config, clock = build ~n in
  let build_ns = Clock.now clock in
  let image = Block_device.snapshot dev in
  let store, reads, mount_ns = cold_mount ~config image in
  let resident = Dbfs.cache_resident store in
  let row =
    {
      mb_subjects = n;
      mb_build_sim_ms = float_of_int build_ns /. 1e6;
      mb_mount_reads = reads;
      mb_mount_sim_us = float_of_int mount_ns /. 1e3;
      mb_resident_after_mount = resident;
      (* enumerating the node pages walks the trees — only after the
         mount numbers above are recorded *)
      mb_index_pages = List.length (Dbfs.index_page_blocks store);
    }
  in
  (row, store)

(* The skewed compliance workload: 50% right-of-access exports (Art.15),
   10% erasures (Art.17, tolerating an already-erased subject — Zipf
   revisits the head of the distribution), 38% DED point selects on the
   unique indexed email, 2% wide selects on the shared bucket field. *)
let zipf_workload store ~n ~ops ~budget =
  Dbfs.set_cache_budget store budget;
  Stats.Counter.reset (Dbfs.stats store);
  let clock = Block_device.clock (Dbfs.device store) in
  let t0 = Clock.now clock in
  let zipf = Prng.Zipf.create ~n ~theta:0.99 in
  let prng = Prng.create ~seed:11L () in
  let resident_max = ref 0 in
  let ok = ref true in
  let note = function
    | Ok _ -> ()
    | Error e ->
        ok := false;
        prerr_endline ("Mount_bench zipf op: " ^ Dbfs.error_to_string e)
  in
  for _ = 1 to ops do
    let i = Prng.Zipf.sample zipf prng in
    let subject = subject_of i in
    let r = Prng.int prng 100 in
    (if r < 50 then note (Dbfs.export_subject store ~actor subject)
     else if r < 60 then
       match Dbfs.pds_of_subject store ~actor subject with
       | Error e -> note (Error e)
       | Ok pds ->
           List.iter
             (fun pd ->
               match
                 Dbfs.erase_with store ~actor pd ~seal:(fun _ -> "sealed")
               with
               | Ok () | Error (Dbfs.Erased _) -> ()
               | Error e -> note (Error e))
             pds
     else if r < 98 then
       note
         (Dbfs.select store ~actor "person"
            (Query.Eq ("email", Value.VString (email_of i))))
     else
       note
         (Dbfs.select store ~actor "person"
            (Query.Eq ("bucket", Value.VInt (i mod bucket_mod)))));
    resident_max := max !resident_max (Dbfs.cache_resident store)
  done;
  let get k = Stats.Counter.get (Dbfs.stats store) k in
  {
    zb_subjects = n;
    zb_ops = ops;
    zb_budget = budget;
    zb_resident_max = !resident_max;
    zb_hits = get "page_hits";
    zb_misses = get "page_misses";
    zb_evictions = get "cache_evictions";
    zb_page_reads = get "index_page_reads";
    zb_sim_ms = float_of_int (Clock.now clock - t0) /. 1e6;
    zb_ops_ok = !ok;
  }

let run ?(sizes = [ 1_000; 10_000; 100_000; 1_000_000 ]) ?(ops = 20_000)
    ?(budget = 4_096) () =
  if sizes = [] then fail "run" "empty size list";
  let sizes = List.sort_uniq compare sizes in
  let rows_rev, last_store =
    List.fold_left
      (fun (acc, _) n ->
        let row, store = measure_mount ~n in
        (row :: acc, Some store))
      ([], None) sizes
  in
  let store =
    match last_store with Some s -> s | None -> fail "run" "no store"
  in
  let zipf =
    zipf_workload store ~n:(List.hd (List.rev sizes)) ~ops ~budget
  in
  { mb_rows = List.rev rows_rev; mb_zipf = zipf }

let read_ratio r =
  match List.map (fun row -> row.mb_mount_reads) r.mb_rows with
  | [] -> nan
  | reads ->
      let mn = List.fold_left min max_int reads in
      let mx = List.fold_left max 0 reads in
      if mn <= 0 then infinity else float_of_int mx /. float_of_int mn

let render r =
  let module Table = Rgpdos_util.Table in
  let rows =
    Table.render
      ~align:Table.[ Right; Right; Right; Right; Right; Right ]
      ~header:
        [
          "subjects"; "build sim ms"; "mount reads"; "mount sim us";
          "resident"; "index pages";
        ]
      (List.map
         (fun row ->
           [
             string_of_int row.mb_subjects;
             Printf.sprintf "%.1f" row.mb_build_sim_ms;
             string_of_int row.mb_mount_reads;
             Printf.sprintf "%.1f" row.mb_mount_sim_us;
             string_of_int row.mb_resident_after_mount;
             string_of_int row.mb_index_pages;
           ])
         r.mb_rows)
  in
  let z = r.mb_zipf in
  rows ^ "\n"
  ^ Printf.sprintf "clean-mount read ratio (max/min): %.2fx\n" (read_ratio r)
  ^ Printf.sprintf
      "zipf workload: %d ops over %d subjects, budget %d entries\n\
      \  resident high-water %d  hits %d  misses %d  evictions %d  node-page \
       reads %d  sim %.1f ms  ops_ok %b"
      z.zb_ops z.zb_subjects z.zb_budget z.zb_resident_max z.zb_hits
      z.zb_misses z.zb_evictions z.zb_page_reads z.zb_sim_ms z.zb_ops_ok
