(** Same-build A/B driver for the asynchronous block-I/O path.

    Runs the E1 DED pipeline on one binary with the device's async
    submission queues off (the scalar charging model of every committed
    baseline) and on, sweeping queue depth, and reports the load-stage
    and total speedups plus the overlap ratio
    ([overlap_ns_hidden / async_service_ns]).  Each run also
    cross-checks the async==sync
    invariant at bench scale: identical stages and identical
    byte-movement device counters (reads, writes, bytes_read,
    bytes_written, write_ops, trims) — submission-shape counters may
    differ, since pipelining splits one batch op into several. *)

type depth_row = {
  ar_depth : int;  (** queue depth of this async run *)
  ar_total_ns : int;
  ar_load_ns : int;  (** ded_load_membrane + ded_load_data simulated ns *)
  ar_load_speedup : float;  (** sync load stages / async load stages *)
  ar_total_speedup : float;
  ar_overlap_pct : float;
      (** device service hidden behind compute, percent of total service *)
  ar_submits : int;  (** async_submits counter *)
  ar_highwater : int;  (** queue_depth_highwater counter *)
}

type size_run = {
  as_subjects : int;
  as_sync_total_ns : int;
  as_sync_load_ns : int;
  as_rows : depth_row list;  (** one per swept depth, input order *)
  as_invariant_ok : bool;
      (** same stages and same byte-movement device counters on every side *)
}

type result = {
  a_depths : int list;
  a_sizes : size_run list;
  a_best_load_speedup : float;
      (** best load-stage speedup over all sizes at depth >= 4 — the
          figure the BENCH gate compares against its absolute bar *)
  a_best_overlap_pct : float;  (** best overlap ratio at depth >= 4 *)
}

val run : ?depths:int list -> ?sizes:int list -> unit -> result
(** Defaults: depths [1; 4; 16; 64], sizes [2_000; 8_000] subjects.
    Deterministic: simulated figures depend only on the parameters. *)

val render : result -> string
