module Prng = Rgpdos_util.Prng

type op =
  | Op_insert of Population.person
  | Op_purpose_query of string
  | Op_subject_read of string
  | Op_update_consent of { subject : string; purpose : string; grant : bool }
  | Op_access of string
  | Op_erase of string
  | Op_ttl_sweep
  | Op_verify_audit

let op_kind = function
  | Op_insert _ -> "insert"
  | Op_purpose_query _ -> "purpose_query"
  | Op_subject_read _ -> "subject_read"
  | Op_update_consent _ -> "update_consent"
  | Op_access _ -> "access"
  | Op_erase _ -> "erase"
  | Op_ttl_sweep -> "ttl_sweep"
  | Op_verify_audit -> "verify_audit"

type role = Controller | Customer | Processor | Regulator

let role_to_string = function
  | Controller -> "controller"
  | Customer -> "customer"
  | Processor -> "processor"
  | Regulator -> "regulator"

let all_roles = [ Controller; Customer; Processor; Regulator ]

let mix = function
  | Controller ->
      [ ("insert", 0.35); ("update_consent", 0.35); ("subject_read", 0.20);
        ("ttl_sweep", 0.10) ]
  | Customer ->
      [ ("access", 0.40); ("update_consent", 0.30); ("erase", 0.15);
        ("insert", 0.15) ]
  | Processor ->
      [ ("purpose_query", 0.70); ("subject_read", 0.25); ("insert", 0.05) ]
  | Regulator ->
      [ ("access", 0.50); ("verify_audit", 0.35); ("purpose_query", 0.15) ]

let pick_kind prng weights =
  let roll = Prng.float prng 1.0 in
  let rec go acc = function
    | [] -> fst (List.hd weights)
    | (kind, w) :: rest -> if roll < acc +. w then kind else go (acc +. w) rest
  in
  go 0.0 weights

let generate prng ~role ~population ~n =
  let pop = Array.of_list population in
  if Array.length pop = 0 then invalid_arg "Gdprbench.generate: empty population";
  let zipf = Prng.Zipf.create ~n:(Array.length pop) ~theta:0.99 in
  let next_fresh = ref (Array.length pop) in
  let pick_subject () = pop.(Prng.Zipf.sample zipf prng).Population.subject_id in
  let weights = mix role in
  List.init n (fun _ ->
      match pick_kind prng weights with
      | "insert" ->
          (* a brand-new person signing up *)
          let person = List.hd (Population.generate prng ~n:1) in
          let person =
            {
              person with
              Population.subject_id = Printf.sprintf "sub-%06d" !next_fresh;
            }
          in
          incr next_fresh;
          Op_insert person
      | "purpose_query" ->
          Op_purpose_query (Prng.pick_list prng Population.purposes)
      | "subject_read" -> Op_subject_read (pick_subject ())
      | "update_consent" ->
          Op_update_consent
            {
              subject = pick_subject ();
              purpose = Prng.pick_list prng [ "analytics"; "marketing" ];
              grant = Prng.bool prng;
            }
      | "access" -> Op_access (pick_subject ())
      | "erase" -> Op_erase (pick_subject ())
      | "ttl_sweep" -> Op_ttl_sweep
      | "verify_audit" -> Op_verify_audit
      | other -> failwith ("unknown op kind " ^ other))
