(** Rights-under-load SLA bench: a mixed open-loop driver measuring how
    promptly the OS serves GDPR rights while heavy purpose-bound
    processing saturates the machine.

    Methodology (GDPRBench measures rights latency under mixed load as
    {i the} discriminating metric; "Towards an Enforceable GDPR
    Specification" frames the per-request deadline verdict as the
    enforcement monitor's output):

    - {b Open loop}: a seeded arrival schedule is generated up front on
      the virtual timeline — heavy shard-decomposable DED scans arriving
      faster than they complete (saturating by construction: the batch
      interarrival is 7/10 of the measured warm scan service time), with
      rights requests (Art. 15 access, Art. 17 erasure, Art. 20
      portability, Art. 33 breach enumeration) arriving as a Poisson
      stream, each carrying an absolute deadline.  Arrivals never wait
      for service: a backlog under FIFO makes rights queue behind every
      batch scan already submitted, which is exactly the effect the
      deadline lane exists to kill.
    - {b A/B on one build}: the identical schedule replays against a
      FIFO dispatcher (rights wait their turn; batch scans run to
      completion) and an EDF dispatcher (pending rights run
      earliest-deadline-first, and a scan in flight is {i preempted at
      shard-wave boundaries} through {!Rgpdos_ded.Ded.execute}'s
      cooperative [?yield]).  Both sides execute scans in the same
      wave/grain mode — FIFO gets a no-op yield — so simulated service
      costs are identical and only scheduling differs.
    - {b Verdicts}: per-right p50/p99 simulated latency, per-right
      deadline misses, and the scheduler counters ([preemptions],
      [deadline_misses], [rights_jobs], [max_queue_depth]).

    Two scenario runs ride on the same engine, both under EDF:
    - {b consent-revocation storm} — a purpose loses 10%% of subjects in
      one tick (a burst of Art. 7 withdrawals with one shared arrival),
      drained against a deadline while scans keep arriving;
    - {b Art. 33 breach notification} — replay the audit chain to
      enumerate every subject whose PD was touched since the breach
      window opened, against a notification deadline.

    Everything runs on the virtual clock: a [?domains] pool accelerates
    host wall time only, so the report is byte-identical (minus wall
    fields) at 1/2/4 domains — pinned by tests. *)

type policy = Fifo | Edf

val policy_label : policy -> string

type right = Access | Erase | Portability | Breach | Revoke

val right_label : right -> string
(** ["art15"], ["art17"], ["art20"], ["art33"], ["art7"]. *)

val deadline_ns : right -> int
(** The per-right SLO (relative simulated deadline): 50 ms for
    Art. 15/17/20 (above the scan's longest non-preemptible section —
    stages 1-4 of the DED pipeline run before the first shard-wave
    yield point exists), 250 ms for Art. 33.  For Art. 7 the value is
    the {i base} of the storm drain deadline — see {!storm_deadline}. *)

val storm_deadline : n:int -> int
(** The shared drain deadline of an [n]-withdrawal storm burst,
    relative to the burst arrival: applying one withdrawal costs
    several simulated ms (membrane update, copy propagation, journal),
    so the burst SLO is "all applied within base + n x budget" rather
    than a flat per-request latency. *)

val scan_cost_per_record : int
(** Simulated [ded_execute] cost per record of the saturating batch
    scan (50 us — a heavy analytics pass). *)

val breach_cost_per_entry : int
(** Simulated cost charged per audit-chain entry replayed by the
    Art. 33 enumerator. *)

type right_stats = {
  rs_label : string;
  rs_count : int;
  rs_errors : int;
  rs_p50_ns : int;
  rs_p99_ns : int;
  rs_max_ns : int;
  rs_misses : int;
  rs_deadline_ns : int;  (** the class SLO, relative *)
}

type side = {
  sd_policy : string;
  sd_batch_jobs : int;
  sd_batch_errors : int;
  sd_sim_ns : int;       (** simulated span of the whole run *)
  sd_wall_s : float;     (** host wall clock (the only nondeterminism) *)
  sd_counters : (string * int) list;
      (** the canonical scheduler counters, 0 defaults *)
  sd_rights : right_stats list;  (** sorted by label *)
}

type storm = {
  st_requests : int;
  st_p50_ns : int;
  st_p99_ns : int;
  st_misses : int;
  st_drain_ns : int;  (** last withdrawal completion − burst arrival *)
}

type breach = {
  bn_affected : int;        (** distinct subjects enumerated *)
  bn_entries : int;         (** audit entries replayed *)
  bn_latency_ns : int;
  bn_deadline_ns : int;
  bn_met : bool;
}

type result = {
  r_subjects : int;
  r_domains : int;
  r_seed : int64;
  r_batches : int;
  r_batch_every_ns : int;
  r_fifo : side;
  r_edf : side;
  r_improvement : (string * float) list;
      (** per right label, FIFO p99 / EDF p99 (present when both sides
          served the class) *)
  r_storm : storm;
  r_breach : breach;
}

val run :
  ?seed:int64 ->
  ?domains:int ->
  ?subjects:int ->
  ?batches:int ->
  unit ->
  result
(** Defaults: seed 7, domains 4 (0 = inline), 2000 subjects, 30 batch
    scans.  @raise Invalid_argument on a non-positive size. *)

val improvement : result -> string -> float option
(** The p99 improvement factor for a right label, e.g. ["art15"]. *)

val render : result -> string
