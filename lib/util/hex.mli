(** Hexadecimal encoding of byte strings. *)

val encode : string -> string
(** Lowercase hex, two characters per input byte. *)

val decode : string -> (string, string) result
(** Inverse of [encode]; accepts upper- and lowercase digits.  Returns
    [Error _] on odd length or non-hex characters. *)

val decode_exn : string -> string
(** @raise Invalid_argument on malformed input. *)
