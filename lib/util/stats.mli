(** Small descriptive-statistics toolkit for the experiment harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on an empty list. *)

val percentile : float array -> float -> float
(** [percentile sorted p] with [p] in [\[0,1\]]; linear interpolation.  The
    array must already be sorted ascending. *)

val mean : float list -> float
val stddev : float list -> float

val pp_summary : Format.formatter -> summary -> unit

module Counter : sig
  (** String-keyed monotone counters, used for event accounting
      (IO operations, enforcement denials, leaks found, ...). *)

  type t

  val create : unit -> t
  val incr : t -> ?by:int -> string -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
  (** Sorted by key. *)

  val reset : t -> unit
end
