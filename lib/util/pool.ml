(* Fixed-size Domain work pool: a shared FIFO task queue drained by
   [workers] spawned domains, with mutex/condition futures.  Parallelism
   affects host wall-clock only; result order (and thus everything the
   simulation observes) is deterministic by construction. *)

type 'a state =
  | Pending
  | Value of 'a
  | Raised of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

type t = {
  m : Mutex.t;
  c : Condition.t; (* new task queued, or shutdown *)
  tasks : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable handles : unit Domain.t list;
  nworkers : int;
}

let workers t = t.nworkers

let worker_loop t =
  let rec loop () =
    Mutex.lock t.m;
    let rec next () =
      match Queue.take_opt t.tasks with
      | Some task ->
          Mutex.unlock t.m;
          task ();
          loop ()
      | None ->
          if t.stop then Mutex.unlock t.m
          else (
            Condition.wait t.c t.m;
            next ())
    in
    next ()
  in
  loop ()

let create ?workers () =
  let nworkers =
    match workers with
    | Some n ->
        if n < 0 then invalid_arg "Pool.create: negative worker count";
        n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      m = Mutex.create ();
      c = Condition.create ();
      tasks = Queue.create ();
      stop = false;
      handles = [];
      nworkers;
    }
  in
  t.handles <- List.init nworkers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let resolve fut result =
  Mutex.lock fut.fm;
  fut.state <- result;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let run_into fut f () =
  let result =
    match f () with
    | v -> Value v
    | exception exn -> Raised (exn, Printexc.get_raw_backtrace ())
  in
  resolve fut result

let async t f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
  if t.nworkers = 0 then run_into fut f ()
  else begin
    Mutex.lock t.m;
    if t.stop then (
      Mutex.unlock t.m;
      invalid_arg "Pool.async: pool is shut down");
    Queue.push (run_into fut f) t.tasks;
    Condition.signal t.c;
    Mutex.unlock t.m
  end;
  fut

let await fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.state with
    | Pending ->
        Condition.wait fut.fc fut.fm;
        wait ()
    | (Value _ | Raised _) as r ->
        Mutex.unlock fut.fm;
        r
  in
  match wait () with
  | Value v -> v
  | Raised (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | Pending -> assert false

let map_array t f arr =
  if t.nworkers = 0 then Array.map f arr
  else begin
    let futures = Array.map (fun x -> async t (fun () -> f x)) arr in
    (* settle every future before re-raising, so one failure cannot leave
       stray tasks mutating shared state after we return *)
    Array.iter (fun fut -> try ignore (await fut) with _ -> ()) futures;
    Array.map await futures
  end

let map_list t f l = Array.to_list (map_array t f (Array.of_list l))

let chunks ~items ~chunks =
  if items < 0 || chunks < 0 then invalid_arg "Pool.chunks: negative argument";
  let n = min items chunks in
  Array.init n (fun i ->
      (* first [items mod n] chunks get the extra item *)
      let base = items / n and extra = items mod n in
      let off = (i * base) + min i extra in
      let len = base + if i < extra then 1 else 0 in
      (off, len))

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.c;
  Mutex.unlock t.m;
  List.iter Domain.join t.handles;
  t.handles <- []

let with_pool ?workers f =
  let t = create ?workers () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
