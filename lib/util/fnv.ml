let hash64 s =
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3 land max_int)
    s;
  !h

let hash64_hex s = Printf.sprintf "%016x" (hash64 s)
