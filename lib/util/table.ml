type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let normalize_row width row =
  let n = List.length row in
  if n >= width then row else row @ List.init (width - n) (fun _ -> "")

let render ?(align = []) ~header rows =
  let ncols = List.length header in
  let rows = List.map (normalize_row ncols) rows in
  let aligns =
    List.init ncols (fun i ->
        match List.nth_opt align i with Some a -> a | None -> Left)
  in
  let widths =
    List.init ncols (fun i ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length (List.nth header i))
          rows)
  in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell)
         row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n"
    (render_row header :: sep :: List.map render_row rows)

let print ?align ~header rows =
  print_endline (render ?align ~header rows)

let fmt_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  (if n < 0 then "-" else "") ^ Buffer.contents buf
