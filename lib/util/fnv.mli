(** FNV-1a-style 63-bit hash, used as a cheap integrity checksum for
    on-device frames (journal records, metadata checkpoints).  Not
    cryptographic — tamper-evidence uses SHA-256 from [rgpdos_crypto]. *)

val hash64 : string -> int
(** Non-negative 63-bit hash. *)

val hash64_hex : string -> string
(** [hash64] rendered as 16 lowercase hex characters. *)
