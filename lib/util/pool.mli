(** Fixed-size OCaml 5 Domain work pool.

    A pool owns [workers] spawned domains that drain a shared task
    queue.  Results come back through futures; [map_array] / [map_list]
    fan a function out over the pool and merge results in *input index
    order*, so a pooled map is observably identical to [Array.map] /
    [List.map] apart from host wall-clock time.

    A pool with [workers = 0] executes everything inline in the calling
    domain — callers can thread an optional pool through without
    branching.

    Discipline: futures must be awaited from the domain that created
    them (in this codebase, the machine's main domain).  Never [await]
    from inside a pooled task — with every worker blocked on a future
    the queue would never drain. *)

type t

val create : ?workers:int -> unit -> t
(** [create ~workers ()] spawns exactly [workers] domains (default:
    [Domain.recommended_domain_count () - 1], at least 1).
    [workers = 0] gives an inline pool that never spawns. *)

val workers : t -> int
(** Number of worker domains ([0] for an inline pool). *)

type 'a future

val async : t -> (unit -> 'a) -> 'a future
(** Submit a task.  On an inline pool the task runs immediately. *)

val await : 'a future -> 'a
(** Block until the task completes.  Re-raises (with backtrace) any
    exception the task raised. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with deterministic, index-ordered results.
    Exceptions from tasks re-raise in index order (the lowest-index
    failing task wins), after all tasks have finished. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val chunks : items:int -> chunks:int -> (int * int) array
(** [chunks ~items ~chunks] splits [0..items-1] into at most [chunks]
    contiguous [(offset, length)] ranges whose lengths differ by at
    most one, in offset order, covering every item exactly once.
    Returns fewer ranges when [items < chunks]; empty when
    [items = 0]. *)

val shutdown : t -> unit
(** Finish queued tasks, stop and join all workers.  Idempotent.
    Using the pool after shutdown raises [Invalid_argument]. *)

val with_pool : ?workers:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it
    down, even if [f] raises. *)
