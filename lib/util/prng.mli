(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment and test is reproducible from a seed.  The generator is
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny state, excellent
    statistical quality for simulation purposes, and trivially splittable. *)

type t
(** Mutable generator state. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] returns a fresh generator.  The default seed is a fixed
    published constant so that two unseeded generators agree. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent from the remainder of [g]'s stream. *)

val split_n : t -> int -> t list
(** [split_n g k] draws [k] independent generators from [g] (in order),
    e.g. one per workload shard.  Each shard then owns its generator
    exclusively — [t] is mutable and must not be shared across
    domains. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val string : t -> int -> string
(** [string g n] is [n] bytes of printable lowercase ASCII. *)

val bytes : t -> int -> string
(** [bytes g n] is [n] uniformly random bytes. *)

val exponential : t -> float -> float
(** [exponential g mean] samples an exponential distribution. *)

module Zipf : sig
  type sampler
  (** Zipfian distribution over [\[0, n)], the standard skewed-popularity
      model for key-value workloads (used by the GDPRBench-style
      generators). *)

  val create : n:int -> theta:float -> sampler
  (** [create ~n ~theta] precomputes the harmonic normalisation.  [theta] is
      the skew (0 = uniform; YCSB uses 0.99).
      @raise Invalid_argument if [n <= 0] or [theta < 0]. *)

  val sample : sampler -> t -> int
  (** Draw a rank in [\[0, n)]; rank 0 is the most popular. *)

  val n : sampler -> int
end
