(** Minimal JSON support for machine-readable benchmark artifacts.

    Deliberately tiny — just enough to emit [BENCH_hotpath.json] and to let
    the test suite parse it back and check its shape.  Not a general JSON
    library: numbers are floats, no unicode escapes beyond [\uXXXX] decoding
    to '?', objects keep insertion order. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Serialize.  [indent > 0] pretty-prints with that many spaces per level;
    the default [indent = 2] keeps committed artifacts diff-friendly. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document (trailing whitespace allowed). *)

val member : string -> t -> t option
(** [member k (Obj ...)] looks up key [k]; [None] for missing keys or
    non-objects. *)

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
