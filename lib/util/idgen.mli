(** Fresh-identifier generation.

    Identifiers are short prefixed strings ("sub-00000017") so they remain
    greppable in logs and deterministic across runs.

    {b Single-writer rule.}  Like {!Clock}, a generator is owned by the
    first domain that calls [fresh] / [fresh_int]; a later call from a
    different domain raises [Failure].  Sharded workloads must give each
    shard its own generator (uniqueness across shards then comes from a
    per-shard prefix or disjoint namespaces, not from sharing). *)

type t

val create : prefix:string -> t

val fresh : t -> string
(** Next identifier; monotone counter per generator. *)

val fresh_int : t -> int
(** Raw counter value of the identifier that [fresh] would have produced. *)

val count : t -> int
(** Number of identifiers handed out so far. *)
