(** Fresh-identifier generation.

    Identifiers are short prefixed strings ("sub-00000017") so they remain
    greppable in logs and deterministic across runs. *)

type t

val create : prefix:string -> t

val fresh : t -> string
(** Next identifier; monotone counter per generator. *)

val fresh_int : t -> int
(** Raw counter value of the identifier that [fresh] would have produced. *)

val count : t -> int
(** Number of identifiers handed out so far. *)
