type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let mean l =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean l in
      let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l in
      sqrt (sq /. float_of_int (List.length l - 1))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if n = 1 then sorted.(0)
  else
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let summarize l =
  match l with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
      let arr = Array.of_list l in
      Array.sort compare arr;
      {
        count = Array.length arr;
        mean = mean l;
        stddev = stddev l;
        min = arr.(0);
        max = arr.(Array.length arr - 1);
        p50 = percentile arr 0.50;
        p95 = percentile arr 0.95;
        p99 = percentile arr 0.99;
      }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f"
    s.count s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max

module Counter = struct
  type t = (string, int) Hashtbl.t

  let create () = Hashtbl.create 16

  let incr t ?(by = 1) key =
    let cur = Option.value ~default:0 (Hashtbl.find_opt t key) in
    Hashtbl.replace t key (cur + by)

  let get t key = Option.value ~default:0 (Hashtbl.find_opt t key)

  let to_list t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let reset = Hashtbl.reset
end
