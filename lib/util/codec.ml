let ( let* ) = Result.bind

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 256

  let clear = Buffer.clear

  let int buf v =
    if v < 0 then invalid_arg "Codec.Writer.int: negative";
    for i = 7 downto 0 do
      Buffer.add_char buf (Char.chr ((v lsr (i * 8)) land 0xff))
    done

  let u32 buf v =
    for i = 3 downto 0 do
      Buffer.add_char buf (Char.chr ((v lsr (i * 8)) land 0xff))
    done

  let string buf s =
    u32 buf (String.length s);
    Buffer.add_string buf s

  let bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

  let list buf f items =
    u32 buf (List.length items);
    List.iter f items

  let contents = Buffer.contents
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let create data = { data; pos = 0 }

  let take r n =
    if r.pos + n > String.length r.data then Error "truncated input"
    else begin
      let s = String.sub r.data r.pos n in
      r.pos <- r.pos + n;
      Ok s
    end

  let int r =
    let* s = take r 8 in
    let v = ref 0 in
    String.iter (fun c -> v := (!v lsl 8) lor Char.code c) s;
    Ok !v

  let u32 r =
    let* s = take r 4 in
    let v = ref 0 in
    String.iter (fun c -> v := (!v lsl 8) lor Char.code c) s;
    Ok !v

  let string r =
    let* len = u32 r in
    take r len

  let bool r =
    let* s = take r 1 in
    match s.[0] with
    | '\000' -> Ok false
    | '\001' -> Ok true
    | c -> Error (Printf.sprintf "invalid bool byte %C" c)

  let list r f =
    let* n = u32 r in
    let rec go acc k =
      if k = 0 then Ok (List.rev acc)
      else
        let* item = f r in
        go (item :: acc) (k - 1)
    in
    go [] n

  let at_end r = r.pos = String.length r.data

  let expect_end r = if at_end r then Ok () else Error "trailing bytes"
end
