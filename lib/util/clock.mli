(** Virtual time.

    Every component of the simulated machine reads time from a [Clock.t]
    rather than the host clock, which makes time-dependent behaviour (TTL
    expiry, journal checkpoint intervals, scheduling quanta) fully
    deterministic and lets experiments fast-forward years of retention
    policy in microseconds.

    {b Single-writer rule.}  A clock may be mutated ([advance] / [set])
    by exactly one domain — the first domain that mutates it becomes its
    owner, and any later mutation from a different domain raises
    [Failure].  Reads ([now]) are allowed from any domain.  Parallel
    code must give each shard its own [Clock.t] (as the sharded
    GDPRBench driver does) rather than share one. *)

type t

type ns = int
(** Nanoseconds since machine boot.  A 63-bit [int] holds ~292 years. *)

val create : ?now:ns -> unit -> t

val now : t -> ns

val advance : t -> ns -> unit
(** [advance c d] moves time forward by [d] nanoseconds.
    @raise Invalid_argument if [d < 0]. *)

val set : t -> ns -> unit
(** [set c t] jumps to absolute time [t], which must not be in the past. *)

val second : ns
val minute : ns
val hour : ns
val day : ns
val year : ns
(** Convenient durations, in nanoseconds.  [year] is 365 days. *)

val pp_duration : Format.formatter -> ns -> unit
(** Human-readable rendering, e.g. ["1y 12d"], ["3.2ms"]. *)
