type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- emit ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let to_string ?(indent = 2) v =
  let buf = Buffer.create 1024 in
  let pad level =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (level * indent) ' ')
    end
  in
  let rec go level v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number f)
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            pad (level + 1);
            go (level + 1) x)
          xs;
        pad level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (level + 1);
            escape buf k;
            Buffer.add_string buf (if indent > 0 then ": " else ":");
            go (level + 1) x)
          kvs;
        pad level;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.add_string buf (if indent > 0 then "\n" else "");
  Buffer.contents buf

(* ---------- parse ---------- *)

exception Fail of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("bad literal " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   pos := !pos + 4;
                   Buffer.add_char buf '?'
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items (v :: acc)
            | Some ']' ->
                incr pos;
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* ---------- accessors ---------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function List xs -> Some xs | _ -> None
