(** Plain-text table rendering for experiment output.

    The benchmark harness prints the same rows/series a paper table or
    figure would contain; this module keeps that output aligned and
    machine-greppable. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays the table out with a separator line under the
    header.  Columns default to left alignment; a too-short [align] list is
    padded with [Left].  Rows shorter than the header are padded with empty
    cells. *)

val print :
  ?align:align list -> header:string list -> string list list -> unit
(** [render] to stdout, followed by a newline. *)

val fmt_float : ?decimals:int -> float -> string
val fmt_int : int -> string
(** Thousands-separated integer rendering, e.g. [12_345] -> ["12,345"]. *)
