let hexdigit n = "0123456789abcdef".[n]

let encode s =
  String.init (2 * String.length s) (fun i ->
      let b = Char.code (String.unsafe_get s (i lsr 1)) in
      hexdigit (if i land 1 = 0 then b lsr 4 else b land 0xf))

let nibble c =
  match c with
  | '0' .. '9' -> Ok (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Ok (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Ok (Char.code c - Char.code 'A' + 10)
  | _ -> Error (Printf.sprintf "invalid hex digit %C" c)

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else
    let buf = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Ok (Bytes.to_string buf)
      else
        match (nibble s.[i], nibble s.[i + 1]) with
        | Ok hi, Ok lo ->
            Bytes.set buf (i / 2) (Char.chr ((hi lsl 4) lor lo));
            go (i + 2)
        | Error e, _ | _, Error e -> Error e
    in
    go 0

let decode_exn s =
  match decode s with Ok v -> v | Error e -> invalid_arg ("Hex.decode: " ^ e)
