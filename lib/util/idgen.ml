(* Same single-writer discipline as Clock: the first domain to draw an
   identifier owns the generator; a second mutating domain is a sharding
   bug, not a race to paper over with a mutex. *)
type t = { prefix : string; mutable next : int; mutable owner : int }

let create ~prefix = { prefix; next = 0; owner = -1 }

let assert_single_writer g =
  let me = (Domain.self () :> int) in
  if g.owner < 0 then g.owner <- me
  else if g.owner <> me then
    failwith
      "Idgen: mutation from a second domain; id generators are \
       single-writer — give each shard its own Idgen.t"

let fresh_int g =
  assert_single_writer g;
  let n = g.next in
  g.next <- n + 1;
  n

let fresh g = Printf.sprintf "%s-%08d" g.prefix (fresh_int g)

let count g = g.next
