type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let default_seed = 0x5DEECE66DL

let create ?(seed = default_seed) () = { state = seed }

let copy g = { state = g.state }

(* SplitMix64 finaliser: mix the counter into a well-distributed output. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let seed = next64 g in
  { state = seed }

let split_n g n =
  if n < 0 then invalid_arg "Prng.split_n: negative count";
  List.init n (fun _ -> split g)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (next64 g) mask) in
  v mod bound

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g bound =
  (* 53 uniform mantissa bits, matching Stdlib.Random.float's resolution. *)
  let bits = Int64.shift_right_logical (next64 g) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool g = Int64.logand (next64 g) 1L = 1L

let bernoulli g p = float g 1.0 < p

let pick g arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int g (Array.length arr))

let pick_list g l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int g (List.length l))

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let string g n =
  String.init n (fun _ -> Char.chr (Char.code 'a' + int g 26))

let bytes g n = String.init n (fun _ -> Char.chr (int g 256))

let exponential g mean =
  let u = float g 1.0 in
  -. mean *. log (1.0 -. u)

module Zipf = struct
  type sampler = {
    n : int;
    theta : float;
    zetan : float;
    alpha : float;
    eta : float;
    zeta2 : float;
  }

  let zeta n theta =
    let acc = ref 0.0 in
    for i = 1 to n do
      acc := !acc +. (1.0 /. (float_of_int i ** theta))
    done;
    !acc

  let create ~n ~theta =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    if theta < 0.0 then invalid_arg "Zipf.create: theta must be >= 0";
    if theta = 1.0 then invalid_arg "Zipf.create: theta = 1 is singular";
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; zetan; alpha; eta; zeta2 = zeta2 }

  (* Gray's rejection-free method, as used by YCSB's ZipfianGenerator. *)
  let sample s g =
    let u = float g 1.0 in
    let uz = u *. s.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. (0.5 ** s.theta) then 1
    else
      let rank =
        float_of_int s.n *. (((s.eta *. u) -. s.eta +. 1.0) ** s.alpha)
      in
      let rank = int_of_float rank in
      if rank >= s.n then s.n - 1 else if rank < 0 then 0 else rank

  let n s = s.n

  (* silence unused-field warning for diagnostic fields *)
  let _ = fun s -> s.zeta2
end
