(** Minimal self-delimiting binary codec.

    Both filesystems and the membrane store serialize their metadata with
    this module: unsigned varint-free fixed-width ints and length-prefixed
    strings, composed through a writer buffer and a cursor-based reader.
    Decoding is total: malformed input yields [Error], never an exception. *)

module Writer : sig
  type t

  val create : unit -> t

  val clear : t -> unit
  (** Empty the writer for reuse, keeping its allocation.  For hot paths
      that would otherwise create a fresh writer per small message. *)

  val int : t -> int -> unit
  (** 8-byte big-endian; the value must be non-negative.
      @raise Invalid_argument on negative input. *)

  val string : t -> string -> unit
  (** 4-byte length prefix + bytes. *)

  val bool : t -> bool -> unit
  val list : t -> ('a -> unit) -> 'a list -> unit
  (** Length prefix + elements; the callback writes each element (typically
      closing over the writer). *)

  val contents : t -> string
end

module Reader : sig
  type t

  val create : string -> t
  val int : t -> (int, string) result
  val string : t -> (string, string) result
  val bool : t -> (bool, string) result
  val list : t -> (t -> ('a, string) result) -> ('a list, string) result
  val at_end : t -> bool
  val expect_end : t -> (unit, string) result
end

val ( let* ) :
  ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
(** Result bind, re-exported for decoder pipelines. *)
