type ns = int

(* Virtual clocks are single-writer: the first domain that mutates a
   clock owns it for life.  [owner] is -1 until the first mutation.
   Reads ([now]) are unguarded — a torn read cannot happen on an
   immediate int field, and read-only observers (e.g. sandbox contexts
   running on pool workers) are legitimate. *)
type t = { mutable now : ns; mutable owner : int }

let create ?(now = 0) () = { now; owner = -1 }

let now c = c.now

let assert_single_writer c =
  let me = (Domain.self () :> int) in
  if c.owner < 0 then c.owner <- me
  else if c.owner <> me then
    failwith
      "Clock: mutation from a second domain; virtual clocks are \
       single-writer — give each shard its own Clock.t"

let advance c d =
  assert_single_writer c;
  if d < 0 then invalid_arg "Clock.advance: negative duration";
  c.now <- c.now + d

let set c t =
  assert_single_writer c;
  if t < c.now then invalid_arg "Clock.set: time cannot go backwards";
  c.now <- t

let second = 1_000_000_000
let minute = 60 * second
let hour = 60 * minute
let day = 24 * hour
let year = 365 * day

let pp_duration fmt d =
  if d >= year then
    Format.fprintf fmt "%dy %dd" (d / year) (d mod year / day)
  else if d >= day then Format.fprintf fmt "%dd %dh" (d / day) (d mod day / hour)
  else if d >= hour then
    Format.fprintf fmt "%dh %dm" (d / hour) (d mod hour / minute)
  else if d >= minute then
    Format.fprintf fmt "%dm %ds" (d / minute) (d mod minute / second)
  else if d >= second then
    Format.fprintf fmt "%.2fs" (float_of_int d /. float_of_int second)
  else if d >= 1_000_000 then
    Format.fprintf fmt "%.2fms" (float_of_int d /. 1e6)
  else if d >= 1_000 then Format.fprintf fmt "%.2fus" (float_of_int d /. 1e3)
  else Format.fprintf fmt "%dns" d
