module Clock = Rgpdos_util.Clock
module Idgen = Rgpdos_util.Idgen

type kind =
  | Access
  | Portability
  | Erasure
  | Restriction
  | Lift_restriction
  | Withdraw_consent of string

let kind_to_string = function
  | Access -> "access (art. 15)"
  | Portability -> "portability (art. 20)"
  | Erasure -> "erasure (art. 17)"
  | Restriction -> "restriction (art. 18)"
  | Lift_restriction -> "lift restriction (art. 18)"
  | Withdraw_consent purpose -> "withdraw consent for " ^ purpose ^ " (art. 7)"

type status = Pending | Fulfilled | Rejected of string

type request = {
  request_id : string;
  subject : string;
  kind : kind;
  filed_at : Clock.ns;
  deadline : Clock.ns;
  mutable status : status;
  mutable response : string option;
}

(* art. 12(3): "without undue delay and in any event within one month" *)
let statutory_delay = 30 * Clock.day

type t = {
  machine : Machine.t;
  ids : Idgen.t;
  mutable requests_rev : request list;
}

let create machine =
  { machine; ids = Idgen.create ~prefix:"req"; requests_rev = [] }

let file t ~subject kind =
  let now = Clock.now (Machine.clock t.machine) in
  let request =
    {
      request_id = Idgen.fresh t.ids;
      subject;
      kind;
      filed_at = now;
      deadline = now + statutory_delay;
      status = Pending;
      response = None;
    }
  in
  t.requests_rev <- request :: t.requests_rev;
  request

let all t = List.rev t.requests_rev

let find t id = List.find_opt (fun r -> r.request_id = id) t.requests_rev

let dispatch t (r : request) =
  match r.kind with
  | Access -> (
      match Machine.right_of_access t.machine ~subject:r.subject with
      | Ok doc -> Ok (Some doc)
      | Error e -> Error e)
  | Portability -> (
      match Machine.right_to_portability t.machine ~subject:r.subject with
      | Ok doc -> Ok (Some doc)
      | Error e -> Error e)
  | Erasure -> (
      match Machine.right_to_erasure t.machine ~subject:r.subject with
      | Ok n -> Ok (Some (Printf.sprintf "%d PD crypto-erased" n))
      | Error e -> Error e)
  | Restriction -> (
      match Machine.restrict_processing t.machine ~subject:r.subject with
      | Ok n -> Ok (Some (Printf.sprintf "%d membranes restricted" n))
      | Error e -> Error e)
  | Lift_restriction -> (
      match Machine.lift_restriction t.machine ~subject:r.subject with
      | Ok n -> Ok (Some (Printf.sprintf "%d membranes unrestricted" n))
      | Error e -> Error e)
  | Withdraw_consent purpose -> (
      match Machine.withdraw_consent t.machine ~subject:r.subject ~purpose with
      | Ok n -> Ok (Some (Printf.sprintf "consent withdrawn on %d membranes" n))
      | Error e -> Error e)

let fulfil t id =
  match find t id with
  | None -> Error (Printf.sprintf "unknown request %s" id)
  | Some r -> (
      match r.status with
      | Fulfilled | Rejected _ ->
          Error (Printf.sprintf "request %s is not pending" id)
      | Pending -> (
          match dispatch t r with
          | Ok response ->
              r.status <- Fulfilled;
              r.response <- response;
              Ok r
          | Error e ->
              r.status <- Rejected e;
              Error e))

let pending t = List.filter (fun r -> r.status = Pending) (all t)

let fulfil_all_pending t =
  List.fold_left
    (fun n r -> match fulfil t r.request_id with Ok _ -> n + 1 | Error _ -> n)
    0 (pending t)

let overdue t =
  let now = Clock.now (Machine.clock t.machine) in
  List.filter (fun r -> r.status = Pending && now > r.deadline) (all t)

let statistics t =
  let filed = List.length t.requests_rev in
  let fulfilled =
    List.length (List.filter (fun r -> r.status = Fulfilled) t.requests_rev)
  in
  let rejected =
    List.length
      (List.filter
         (fun r -> match r.status with Rejected _ -> true | _ -> false)
         t.requests_rev)
  in
  (filed, fulfilled, rejected, List.length (overdue t))
