module Clock = Rgpdos_util.Clock
module Prng = Rgpdos_util.Prng
module Block_device = Rgpdos_block.Block_device
module Journalfs = Rgpdos_journalfs.Journalfs
module Membrane = Rgpdos_membrane.Membrane
module Dbfs = Rgpdos_dbfs.Dbfs
module Schema = Rgpdos_dbfs.Schema
module Record = Rgpdos_dbfs.Record
module Ast = Rgpdos_lang.Ast
module Parser = Rgpdos_lang.Parser
module Lsm = Rgpdos_kernel.Lsm
module Syscall = Rgpdos_kernel.Syscall
module Resource = Rgpdos_kernel.Resource
module Subkernel = Rgpdos_kernel.Subkernel
module Scheduler = Rgpdos_kernel.Scheduler
module Audit_log = Rgpdos_audit.Audit_log
module Ded = Rgpdos_ded.Ded
module Processing = Rgpdos_ded.Processing
module Processing_store = Rgpdos_ps.Processing_store
module Authority = Rgpdos_gdpr.Authority
module Ttl_sweeper = Rgpdos_gdpr.Ttl_sweeper
module Compliance = Rgpdos_gdpr.Compliance

type t = {
  clock : Clock.t;
  prng : Prng.t;
  authority : Authority.t;
  pd_dev : Block_device.t;
  npd_dev : Block_device.t;
  dbfs : Dbfs.t;
  npd_fs : Journalfs.t;
  audit : Audit_log.t;
  ps : Processing_store.t;
  ded : Ded.t;
  lsm : Lsm.t;
  resources : Resource.t;
  kernels : Subkernel.t list;
  scheduler : Scheduler.t;
  purposes : (string, Ast.purpose_decl) Hashtbl.t;
  collectors : (string, unit -> (string * Record.t) list) Hashtbl.t;
}

let sysadmin = "sysadmin"

let default_journal_blocks = 256

(* Wire a machine around already-constructed storage: shared by [boot]
   (fresh format) and [reboot] (remount of existing devices). *)
let assemble ~clock ~prng ~authority ~pd_dev ~npd_dev ~dbfs ~npd_fs ~audit =
  let ps = Processing_store.create ~clock ~dbfs ~audit () in
  let ded = Ded.create ~clock ~dbfs ~audit () in
  (* enforcement rules 1-4 (§2): DBFS is invisible from the outside.  Only
     the DED touches it fully; the PS may read schemas to run the
     purpose/implementation match; the sysadmin may create types. *)
  let lsm = Lsm.create ~default:Lsm.Deny () in
  Lsm.allow lsm ~actor:Ded.actor ~klass:"dbfs" ~op:"*";
  Lsm.allow lsm ~actor:Processing_store.actor ~klass:"dbfs" ~op:"read";
  Lsm.allow lsm ~actor:sysadmin ~klass:"dbfs" ~op:"create_type";
  Dbfs.set_access_hook dbfs (Lsm.as_dbfs_hook lsm);
  (* purpose kernels over a shared resource pool *)
  let resources = Resource.create ~cpu_millis:8_000 ~mem_pages:1_048_576 in
  let claim owner cpu mem =
    match Resource.claim resources ~owner ~cpu_millis:cpu ~mem_pages:mem with
    | Ok p -> p
    | Error e -> failwith ("Machine.boot: resource claim failed: " ^ e)
  in
  let kernels =
    [
      Subkernel.make ~id:"io-pd" ~kind:(Subkernel.Io_driver "pd-nvme")
        ~partition:(claim "io-pd" 500 32_768)
        ~policy:Syscall.Policy.allow_all ();
      Subkernel.make ~id:"io-npd" ~kind:(Subkernel.Io_driver "npd-nvme")
        ~partition:(claim "io-npd" 500 32_768)
        ~policy:Syscall.Policy.allow_all ();
      Subkernel.make ~id:"general" ~kind:Subkernel.General_purpose
        ~partition:(claim "general" 4_000 524_288)
        ~policy:Syscall.Policy.allow_all ();
      Subkernel.make ~id:"rgpdos" ~kind:Subkernel.Rgpd
        ~partition:(claim "rgpdos" 3_000 262_144)
        ~policy:Syscall.Policy.builtin_policy ();
    ]
  in
  let scheduler = Scheduler.create ~clock ~kernels in
  {
    clock;
    prng;
    authority;
    pd_dev;
    npd_dev;
    dbfs;
    npd_fs;
    audit;
    ps;
    ded;
    lsm;
    resources;
    kernels;
    scheduler;
    purposes = Hashtbl.create 16;
    collectors = Hashtbl.create 8;
  }

let boot ?(seed = 42L) ?pd_device ?npd_device ?authority ?(segmented = false)
    ?(group_commit_window = 1) () =
  let clock = Clock.create () in
  let prng = Prng.create ~seed () in
  let authority =
    match authority with
    | Some a -> a
    | None -> Authority.create ~seed:(Int64.add seed 1L) ()
  in
  let mk_dev cfg =
    match cfg with
    | Some config -> Block_device.create ~config ~clock ()
    | None -> Block_device.create ~clock ()
  in
  let pd_dev = mk_dev pd_device in
  let npd_dev = mk_dev npd_device in
  let dbfs = Dbfs.format ~segmented pd_dev ~journal_blocks:default_journal_blocks in
  if group_commit_window > 1 then Dbfs.set_group_commit dbfs group_commit_window;
  let npd_fs = Journalfs.format npd_dev ~journal_blocks:default_journal_blocks in
  let audit = Audit_log.create () in
  assemble ~clock ~prng ~authority ~pd_dev ~npd_dev ~dbfs ~npd_fs ~audit

(* A reboot models a power cycle: stored PD, membranes and the persisted
   audit chain survive on the devices; everything in memory — declared
   purposes, registered processings, collectors — is gone and must be
   redeployed by the operator, exactly as code is redeployed on a real
   machine.  The PD and NPD devices keep the (advanced) virtual clock. *)
let reboot t =
  Dbfs.checkpoint t.dbfs;
  Journalfs.checkpoint t.npd_fs;
  match Dbfs.mount t.pd_dev with
  | Error e -> Error ("DBFS remount: " ^ e)
  | Ok dbfs -> (
      match Journalfs.mount t.npd_dev with
      | Error e -> Error ("NPD FS remount: " ^ e)
      | Ok npd_fs ->
          (* reload the audit chain if it was persisted; else start fresh *)
          let audit =
            match Journalfs.read_file npd_fs "/var/audit.chain" with
            | Ok raw -> (
                match Audit_log.of_bytes raw with
                | Ok chain when Audit_log.verify chain = Ok () -> chain
                | Ok _ | Error _ -> Audit_log.create ())
            | Error _ -> Audit_log.create ()
          in
          Ok
            (assemble ~clock:t.clock ~prng:t.prng ~authority:t.authority
               ~pd_dev:t.pd_dev ~npd_dev:t.npd_dev ~dbfs ~npd_fs ~audit))

let clock t = t.clock
let prng t = t.prng
let dbfs t = t.dbfs
let npd_fs t = t.npd_fs
let audit t = t.audit
let ps t = t.ps
let authority t = t.authority
let lsm t = t.lsm
let kernels t = t.kernels
let scheduler t = t.scheduler
let pd_device t = t.pd_dev

(* ------------------------------------------------------------------ *)
(* data-operator API                                                  *)

let load_declarations t source =
  match Parser.parse source with
  | Error e -> Error e
  | Ok decls ->
      let rec go types purposes = function
        | [] -> Ok (types, purposes)
        | Ast.Type_decl d :: rest -> (
            match Ast.to_schema d with
            | Error e -> Error (Printf.sprintf "type %s: %s" d.Ast.t_name e)
            | Ok schema -> (
                match Dbfs.create_type t.dbfs ~actor:sysadmin schema with
                | Error e ->
                    Error
                      (Printf.sprintf "type %s: %s" d.Ast.t_name
                         (Dbfs.error_to_string e))
                | Ok () -> go (types + 1) purposes rest))
        | Ast.Purpose_decl d :: rest ->
            if Hashtbl.mem t.purposes d.Ast.p_name then
              Error (Printf.sprintf "duplicate purpose %s" d.Ast.p_name)
            else begin
              Hashtbl.replace t.purposes d.Ast.p_name d;
              go types (purposes + 1) rest
            end
      in
      go 0 0 decls

let find_purpose t name = Hashtbl.find_opt t.purposes name

let make_processing t ~name ~purpose ?touches ?cpu_cost_per_record
    ?shard_reduce body =
  match find_purpose t purpose with
  | None -> Error (Printf.sprintf "purpose %s was never declared" purpose)
  | Some decl ->
      Ok
        (Processing.make ~name ~purpose:decl ?touches ?cpu_cost_per_record
           ?shard_reduce body)

let register_processing t spec =
  match Processing_store.register t.ps spec with
  | Ok outcome -> Ok outcome
  | Error e -> Error (Processing_store.error_to_string e)

let approve_processing t name =
  match Processing_store.approve t.ps name with
  | Ok () -> Ok ()
  | Error e -> Error (Processing_store.error_to_string e)

let invoke t ?fetch_mode ?location ?cores ?pool ?grain ?yield ~name ~target
    ?init () =
  match
    Processing_store.invoke t.ps ?fetch_mode ?location ?cores ?pool ?grain
      ?yield ~name ~target ?init ()
  with
  | Ok outcome -> Ok outcome
  | Error e -> Error (Processing_store.error_to_string e)

let collect t ~type_name ~subject ~interface ~record ?consents () =
  match
    Ded.builtin_acquire t.ded ~type_name ~subject ~interface ~record ?consents ()
  with
  | Ok pd_id -> Ok pd_id
  | Error e -> Error (Ded.error_to_string e)

let register_collector t ~interface f = Hashtbl.replace t.collectors interface f

let collect_via t ~type_name ~interface =
  match Dbfs.schema t.dbfs ~actor:Processing_store.actor type_name with
  | Error e -> Error (Dbfs.error_to_string e)
  | Ok schema ->
      (* the membrane metadata declares which interfaces may feed this
         type; an undeclared channel is refused *)
      let declared =
        List.exists
          (fun (kind, target) -> kind = interface || target = interface)
          schema.Schema.collection
      in
      if not declared then
        Error
          (Printf.sprintf "interface %s is not a declared collection channel of %s"
             interface type_name)
      else (
        match Hashtbl.find_opt t.collectors interface with
        | None -> Error (Printf.sprintf "no collector registered for %s" interface)
        | Some pull ->
            let rows = pull () in
            let rec go n = function
              | [] -> Ok n
              | (subject, record) :: rest -> (
                  match
                    Ded.builtin_acquire t.ded ~type_name ~subject ~interface
                      ~record ()
                  with
                  | Ok _ -> go (n + 1) rest
                  | Error e -> Error (Ded.error_to_string e))
            in
            go 0 rows)

(* ------------------------------------------------------------------ *)
(* data-subject rights                                                *)

let lift_dbfs r = Result.map_error Dbfs.error_to_string r

let right_to_portability t ~subject =
  lift_dbfs (Dbfs.export_subject t.dbfs ~actor:Ded.actor subject)

let right_of_access t ~subject =
  match Dbfs.export_subject t.dbfs ~actor:Ded.actor subject with
  | Error e -> Error (Dbfs.error_to_string e)
  | Ok records -> (
      match Dbfs.pds_of_subject t.dbfs ~actor:Ded.actor subject with
      | Error e -> Error (Dbfs.error_to_string e)
      | Ok pd_ids ->
          let history = Audit_log.export_for_subject t.audit ~pd_ids in
          ignore
            (Audit_log.append t.audit ~now:(Clock.now t.clock) ~actor:Ded.actor
               (Audit_log.Exported { subject; pd_ids }));
          Ok
            (Printf.sprintf
               "{\"subject\": \"%s\", \"records\": %s, \"processings\": %s}"
               subject records history))

let right_to_erasure t ~subject =
  match Dbfs.pds_of_subject t.dbfs ~actor:Ded.actor subject with
  | Error e -> Error (Dbfs.error_to_string e)
  | Ok pd_ids ->
      let seal = Authority.sealer t.authority ~prng:t.prng in
      let rec go erased = function
        | [] -> Ok erased
        | pd_id :: rest -> (
            match Dbfs.entry_info t.dbfs ~actor:Ded.actor pd_id with
            | Error e -> Error (Dbfs.error_to_string e)
            | Ok (_, _, true) -> go erased rest (* already erased *)
            | Ok (_, _, false) -> (
                match Ded.builtin_crypto_erase t.ded ~pd_id ~seal with
                | Ok () -> go (erased + 1) rest
                | Error e -> Error (Ded.error_to_string e)))
      in
      go 0 pd_ids

let right_to_rectification t ~pd_id record =
  match Ded.builtin_update t.ded ~pd_id record with
  | Ok () -> Ok ()
  | Error e -> Error (Ded.error_to_string e)

let set_consent t ~subject ~purpose scope =
  match Dbfs.pds_of_subject t.dbfs ~actor:Ded.actor subject with
  | Error e -> Error (Dbfs.error_to_string e)
  | Ok pd_ids ->
      (* update each PD's whole lineage so copies stay consistent *)
      let rec go updated seen = function
        | [] -> Ok updated
        | pd_id :: rest -> (
            match Dbfs.get_membrane t.dbfs ~actor:Ded.actor pd_id with
            | Error e -> Error (Dbfs.error_to_string e)
            | Ok m ->
                let lineage = Membrane.lineage_root m in
                if List.mem lineage seen then go updated seen rest
                else
                  (match
                     Dbfs.update_membranes_by_lineage t.dbfs ~actor:Ded.actor
                       ~lineage (fun m -> Membrane.set_consent m ~purpose scope)
                   with
                  | Error e -> Error (Dbfs.error_to_string e)
                  | Ok n ->
                      ignore
                        (Audit_log.append t.audit ~now:(Clock.now t.clock)
                           ~actor:Ded.actor
                           (Audit_log.Consent_changed
                              {
                                pd_id;
                                purpose;
                                granted = scope <> Membrane.Denied;
                              }));
                      go (updated + n) (lineage :: seen) rest))
      in
      go 0 [] pd_ids

type consent_receipt = {
  receipt_subject : string;
  receipt_purpose : string;
  receipt_scope : string;
  receipt_time : Clock.ns;
  receipt_audit_seq : int;
  receipt_mac : string;
}

(* machine-local receipt key, derived from the authority fingerprint (any
   stable per-machine secret would do) *)
let receipt_key t =
  Rgpdos_crypto.Sha256.digest ("rgpdos-receipt-key|" ^ Authority.key_fingerprint t.authority)

let receipt_material r =
  Printf.sprintf "%s|%s|%s|%d|%d" r.receipt_subject r.receipt_purpose
    r.receipt_scope r.receipt_time r.receipt_audit_seq

let set_consent_with_receipt t ~subject ~purpose scope =
  match set_consent t ~subject ~purpose scope with
  | Error e -> Error e
  | Ok n ->
      (* the Consent_changed entry appended by set_consent is the latest *)
      let audit_seq = Audit_log.length t.audit - 1 in
      let partial =
        {
          receipt_subject = subject;
          receipt_purpose = purpose;
          receipt_scope = Format.asprintf "%a" Membrane.pp_consent_scope scope;
          receipt_time = Clock.now t.clock;
          receipt_audit_seq = audit_seq;
          receipt_mac = "";
        }
      in
      let mac =
        Rgpdos_util.Hex.encode
          (Rgpdos_crypto.Sha256.hmac ~key:(receipt_key t) (receipt_material partial))
      in
      Ok (n, { partial with receipt_mac = mac })

let verify_receipt t r =
  let expected =
    Rgpdos_util.Hex.encode
      (Rgpdos_crypto.Sha256.hmac ~key:(receipt_key t)
         (receipt_material { r with receipt_mac = "" }))
  in
  String.equal expected r.receipt_mac
  &&
  (* the referenced audit entry must exist and describe this decision *)
  match
    List.find_opt
      (fun e -> e.Audit_log.seq = r.receipt_audit_seq)
      (Audit_log.entries t.audit)
  with
  | Some { Audit_log.event = Audit_log.Consent_changed { purpose; _ }; _ } ->
      purpose = r.receipt_purpose
  | Some _ | None -> false

let withdraw_consent t ~subject ~purpose =
  set_consent t ~subject ~purpose Membrane.Denied

let set_restriction t ~subject restricted =
  match Dbfs.pds_of_subject t.dbfs ~actor:Ded.actor subject with
  | Error e -> Error (Dbfs.error_to_string e)
  | Ok pd_ids ->
      let rec go updated seen = function
        | [] -> Ok updated
        | pd_id :: rest -> (
            match Dbfs.get_membrane t.dbfs ~actor:Ded.actor pd_id with
            | Error e -> Error (Dbfs.error_to_string e)
            | Ok m ->
                let lineage = Membrane.lineage_root m in
                if List.mem lineage seen then go updated seen rest
                else
                  (match
                     Dbfs.update_membranes_by_lineage t.dbfs ~actor:Ded.actor
                       ~lineage (fun m -> Membrane.set_restricted m restricted)
                   with
                  | Error e -> Error (Dbfs.error_to_string e)
                  | Ok n -> go (updated + n) (lineage :: seen) rest))
      in
      go 0 [] pd_ids

let restrict_processing t ~subject = set_restriction t ~subject true

let lift_restriction t ~subject = set_restriction t ~subject false

(* ------------------------------------------------------------------ *)
(* operations                                                         *)

let sweep_ttl t ?mode ?incremental () =
  let mode =
    match mode with
    | Some m -> m
    | None -> Ttl_sweeper.Crypto_erase (Authority.sealer t.authority ~prng:t.prng)
  in
  Ttl_sweeper.sweep ~dbfs:t.dbfs ~audit:t.audit ~now:(Clock.now t.clock) ~mode
    ?incremental ()

let compliance_evidence t ?(forensic_probes = []) () =
  let now = Clock.now t.clock in
  (* expired PD still live *)
  let expired_live =
    match Dbfs.list_types t.dbfs ~actor:Ded.actor with
    | Error _ -> 0
    | Ok types ->
        List.fold_left
          (fun acc ty ->
            match Dbfs.list_pds t.dbfs ~actor:Ded.actor ty with
            | Error _ -> acc
            | Ok ids ->
                List.fold_left
                  (fun acc pd_id ->
                    match
                      ( Dbfs.entry_info t.dbfs ~actor:Ded.actor pd_id,
                        Dbfs.get_membrane t.dbfs ~actor:Ded.actor pd_id )
                    with
                    | Ok (_, _, false), Ok m when Membrane.expired m ~now ->
                        acc + 1
                    | _ -> acc)
                  acc ids)
          0 types
  in
  let membraneless =
    match Dbfs.fsck t.dbfs with Ok () -> 0 | Error problems -> List.length problems
  in
  let audit_ok = Audit_log.verify t.audit = Ok () in
  let leaks =
    List.fold_left
      (fun acc probe -> acc + List.length (Block_device.scan t.pd_dev probe))
      0 forensic_probes
  in
  {
    Compliance.expired_live_pd = expired_live;
    membraneless_pd = membraneless;
    audit_chain_ok = audit_ok;
    forensic_leaks_after_erasure = leaks;
    unconsented_accesses = 0 (* structural: the DED filter is the only data path *);
    exports_machine_readable = true;
    minimisation_enforced = true;
  }

let submit_job t job = Scheduler.submit t.scheduler job

let run_jobs t = Scheduler.run_until_idle t.scheduler ()

let audit_path = "/var/audit.chain"

let persist_audit t =
  let bytes = Audit_log.to_bytes t.audit in
  let ensure_var =
    match Journalfs.mkdir t.npd_fs "/var" with
    | Ok () | Error (Journalfs.Already_exists _) -> Ok ()
    | Error e -> Error (Journalfs.error_to_string e)
  in
  match ensure_var with
  | Error e -> Error e
  | Ok () ->
      Result.map_error Journalfs.error_to_string
        (Journalfs.write_file t.npd_fs audit_path bytes)

let verify_persisted_audit t =
  match Journalfs.read_file t.npd_fs audit_path with
  | Error e -> Error (Journalfs.error_to_string e)
  | Ok raw -> (
      match Audit_log.of_bytes raw with
      | Error e -> Error e
      | Ok chain -> (
          match Audit_log.verify chain with
          | Ok () -> Ok (Audit_log.length chain)
          | Error seq -> Error (Printf.sprintf "persisted chain corrupt at #%d" seq)))

let find_kernel t id = List.find (fun k -> k.Subkernel.id = id) t.kernels

let repartition_cpu t ~rgpd_mcpu ~general_mcpu =
  let rgpd = find_kernel t "rgpdos" and general = find_kernel t "general" in
  (* shrink first so the pool can absorb the growth *)
  let shrink_first, grow_second =
    if Resource.cpu_millis rgpd.Subkernel.partition > rgpd_mcpu then
      ((rgpd, rgpd_mcpu), (general, general_mcpu))
    else ((general, general_mcpu), (rgpd, rgpd_mcpu))
  in
  let resize (k, cpu) =
    Resource.resize t.resources k.Subkernel.partition ~cpu_millis:cpu
      ~mem_pages:(Resource.mem_pages k.Subkernel.partition)
  in
  match resize shrink_first with
  | Error e -> Error e
  | Ok () -> resize grow_second

let cpu_partitions t =
  List.map
    (fun k ->
      ( k.Subkernel.id,
        Resource.cpu_millis k.Subkernel.partition,
        Resource.mem_pages k.Subkernel.partition ))
    t.kernels
