(** The data-subject request desk.

    GDPR art. 12(3) gives the operator one month to act on a subject's
    rights request.  This module queues incoming requests against the
    machine's virtual clock, dispatches each to the corresponding
    machine right when fulfilled, and reports what is pending, fulfilled
    and — the compliance-relevant part — overdue. *)

type kind =
  | Access          (** art. 15 *)
  | Portability     (** art. 20 *)
  | Erasure         (** art. 17 *)
  | Restriction     (** art. 18 (apply) *)
  | Lift_restriction
  | Withdraw_consent of string  (** art. 7(3), for the named purpose *)

val kind_to_string : kind -> string

type status = Pending | Fulfilled | Rejected of string

type request = {
  request_id : string;
  subject : string;
  kind : kind;
  filed_at : Rgpdos_util.Clock.ns;
  deadline : Rgpdos_util.Clock.ns;  (** filed_at + one month *)
  mutable status : status;
  mutable response : string option;
      (** for access/portability: the document returned to the subject *)
}

type t

val create : Machine.t -> t
(** One desk per machine; uses the machine's clock. *)

val file : t -> subject:string -> kind -> request
(** A subject files a request; the statutory one-month deadline starts
    now. *)

val fulfil : t -> string -> (request, string) result
(** The operator fulfils a request by id: dispatches to the machine's
    rights API, stores the response, marks it [Fulfilled].  Fulfilling a
    non-pending request fails. *)

val fulfil_all_pending : t -> int
(** Fulfil every pending request (oldest first); returns how many were
    fulfilled.  Requests whose dispatch fails are marked [Rejected]. *)

val pending : t -> request list
(** Oldest first. *)

val overdue : t -> request list
(** Pending requests past their deadline at the machine's current time —
    each one is an art. 12(3) violation in the making. *)

val all : t -> request list
val find : t -> string -> request option

val statistics : t -> int * int * int * int
(** [(filed, fulfilled, rejected, overdue)]. *)
