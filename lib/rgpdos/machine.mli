(** The rgpdOS machine: the paper's Fig. 4 assembled and booted.

    A machine aggregates the purpose kernels (IO-driver kernels, a
    general-purpose kernel for non-personal data, and the rgpdOS kernel),
    two filesystems (DBFS for PD on its own device; a conventional
    journaling FS for NPD), the Processing Store, the DED, the
    tamper-evident audit log, the LSM policy that makes DBFS invisible
    from the outside, and the supervisory-authority key material for
    crypto-erasure.

    This is the library's main entry point: a data operator boots a
    machine, declares PD types (Listing 1 syntax), registers data
    processings, and invokes them; data subjects exercise their GDPR
    rights against it. *)

type t

val boot :
  ?seed:int64 ->
  ?pd_device:Rgpdos_block.Block_device.config ->
  ?npd_device:Rgpdos_block.Block_device.config ->
  ?authority:Rgpdos_gdpr.Authority.t ->
  ?segmented:bool ->
  ?group_commit_window:int ->
  unit ->
  t
(** Create and wire a fresh machine.  Defaults: 64 MiB devices, a
    dedicated authority derived from [seed].  The LSM policy installed at
    boot denies every DBFS access except the DED's (full) and the PS's
    (schema reads) — enforcement rules 1-4 of §2.  [?segmented] formats
    the PD store with the log-structured segment allocator;
    [?group_commit_window] batches journal appends (see
    {!Rgpdos_dbfs.Dbfs.set_group_commit}).  The window is a runtime knob:
    a {!reboot} resets it to 1. *)

val reboot : t -> (t, string) result
(** Power-cycle the machine: checkpoint and remount both filesystems from
    the same devices.  Stored PD, membranes and the persisted audit chain
    survive; in-memory state (declared purposes, registered processings,
    collectors) is gone and must be redeployed — call
    [load_declarations] and [register_processing] again, as on a real
    restart.  The virtual clock keeps its value (TTLs keep running). *)

(** {1 Component access} *)

val clock : t -> Rgpdos_util.Clock.t
val prng : t -> Rgpdos_util.Prng.t
val dbfs : t -> Rgpdos_dbfs.Dbfs.t
val npd_fs : t -> Rgpdos_journalfs.Journalfs.t
val audit : t -> Rgpdos_audit.Audit_log.t
val ps : t -> Rgpdos_ps.Processing_store.t
val authority : t -> Rgpdos_gdpr.Authority.t
val lsm : t -> Rgpdos_kernel.Lsm.t
val kernels : t -> Rgpdos_kernel.Subkernel.t list
val scheduler : t -> Rgpdos_kernel.Scheduler.t
val pd_device : t -> Rgpdos_block.Block_device.t

(** {1 Data-operator API} *)

val load_declarations : t -> string -> (int * int, string) result
(** Parse a source text in the declaration language and install its
    contents: type declarations become DBFS tables, purpose declarations
    enter the purpose registry.  Returns [(types, purposes)] counts. *)

val find_purpose : t -> string -> Rgpdos_lang.Ast.purpose_decl option

val make_processing :
  t ->
  name:string ->
  purpose:string ->
  ?touches:(string * string list) list ->
  ?cpu_cost_per_record:Rgpdos_util.Clock.ns ->
  ?shard_reduce:Rgpdos_ded.Processing.reduce ->
  Rgpdos_ded.Processing.impl ->
  (Rgpdos_ded.Processing.spec, string) result
(** Build a processing spec whose purpose is looked up in the registry
    (fails if the purpose was never declared). *)

val register_processing :
  t ->
  Rgpdos_ded.Processing.spec ->
  (Rgpdos_ps.Processing_store.register_outcome, string) result

val approve_processing : t -> string -> (unit, string) result

val invoke :
  t ->
  ?fetch_mode:Rgpdos_ded.Ded.fetch_mode ->
  ?location:Rgpdos_ded.Ded.location ->
  ?cores:int ->
  ?pool:Rgpdos_util.Pool.t ->
  ?grain:int ->
  ?yield:(unit -> unit) ->
  name:string ->
  target:Rgpdos_ded.Ded.target ->
  ?init:Rgpdos_ps.Processing_store.init ->
  unit ->
  (Rgpdos_ded.Ded.outcome, string) result
(** [?grain]/[?yield] make a shard-decomposable invocation cooperatively
    preemptible at shard-wave boundaries — see {!Rgpdos_ded.Ded.execute}. *)

val collect :
  t ->
  type_name:string ->
  subject:string ->
  interface:string ->
  record:Rgpdos_dbfs.Record.t ->
  ?consents:(string * Rgpdos_membrane.Membrane.consent_scope) list ->
  unit ->
  (string, string) result
(** The acquisition built-in: collect one record for a subject. *)

val register_collector :
  t -> interface:string -> (unit -> (string * Rgpdos_dbfs.Record.t) list) -> unit
(** Plug a data source behind a collection-interface name (the paper's
    [web_form]/[third_party] entries).  The callback returns
    [(subject, record)] rows when the machine pulls from it. *)

val collect_via :
  t -> type_name:string -> interface:string -> (int, string) result
(** Initialise DBFS from a registered collection interface (§2: "the data
    collection interface will be used by rgpdOS to initialize DBFS").  The
    interface must be declared in the type's [collection] clause — pulling
    a PD type through an undeclared channel is refused.  Returns how many
    records were acquired. *)

(** {1 Data-subject rights} *)

val right_of_access : t -> subject:string -> (string, string) result
(** GDPR art. 15: a JSON document with the subject's PD exactly as stored
    in DBFS (structured, meaningful keys) plus the processing history from
    the audit chain. *)

val right_to_portability : t -> subject:string -> (string, string) result
(** Art. 20: the structured record export alone. *)

val right_to_erasure : t -> subject:string -> (int, string) result
(** Art. 17: crypto-erase every PD of the subject under the authority's
    public key and withdraw all consents.  Returns the number of PD
    erased. *)

val right_to_rectification :
  t -> pd_id:string -> Rgpdos_dbfs.Record.t -> (unit, string) result

val set_consent :
  t ->
  subject:string ->
  purpose:string ->
  Rgpdos_membrane.Membrane.consent_scope ->
  (int, string) result
(** Record a subject's consent decision on all their PD (and every copy,
    via lineage propagation).  Returns the number of membranes updated. *)

(** A consent receipt: the demonstrable record of a consent decision that
    art. 7(1) requires the operator to keep ("the controller shall be able
    to demonstrate that the data subject has consented").  The MAC is
    keyed with machine-local secret material; [verify_receipt] lets the
    operator (or an auditor holding the key) check a receipt presented
    later, and the referenced audit entry ties it to the tamper-evident
    chain. *)
type consent_receipt = {
  receipt_subject : string;
  receipt_purpose : string;
  receipt_scope : string;       (** rendered consent scope *)
  receipt_time : Rgpdos_util.Clock.ns;
  receipt_audit_seq : int;      (** the Consent_changed entry in the chain *)
  receipt_mac : string;         (** hex HMAC over the fields above *)
}

val set_consent_with_receipt :
  t ->
  subject:string ->
  purpose:string ->
  Rgpdos_membrane.Membrane.consent_scope ->
  (int * consent_receipt, string) result
(** Like [set_consent], also issuing the receipt for the decision. *)

val verify_receipt : t -> consent_receipt -> bool
(** MAC check plus agreement with the audit chain entry it references. *)

val withdraw_consent : t -> subject:string -> purpose:string -> (int, string) result

val restrict_processing : t -> subject:string -> (int, string) result
(** GDPR art. 18: mark every PD of the subject (and all copies) as
    restricted — processings are refused, but the data is retained.
    Returns the number of membranes updated. *)

val lift_restriction : t -> subject:string -> (int, string) result

(** {1 Operations} *)

val sweep_ttl :
  t ->
  ?mode:Rgpdos_gdpr.Ttl_sweeper.mode ->
  ?incremental:bool ->
  unit ->
  Rgpdos_gdpr.Ttl_sweeper.report
(** Storage-limitation sweep; default mode crypto-erasure under the
    machine's authority.  Incremental by default: only the entries due in
    DBFS's TTL expiry queue are visited, so the sweep costs O(expired)
    rather than O(population) ([?incremental:false] forces the legacy
    full membrane scan). *)

val compliance_evidence :
  t -> ?forensic_probes:string list -> unit -> Rgpdos_gdpr.Compliance.evidence
(** Gather the machine's own compliance evidence: TTL scan, membrane
    invariant (fsck), audit-chain verification, and a forensic scan of the
    PD device for the given probe strings (field values of erased
    subjects). *)

val submit_job : t -> Rgpdos_kernel.Scheduler.job -> (unit, string) result
val run_jobs : t -> unit
(** Purpose-kernel scheduling of PD/NPD work (experiment E9). *)

val persist_audit : t -> (unit, string) result
(** Write the audit chain to the NPD filesystem ([/var/audit.chain]).  The
    chain carries pd_ids and purposes but never PD field values, so the
    conventional journaling FS is an acceptable home for it. *)

val verify_persisted_audit : t -> (int, string) result
(** Reload the persisted chain from the NPD filesystem and verify it;
    returns its length.  Fails if the file was tampered with. *)

val repartition_cpu :
  t -> rgpd_mcpu:int -> general_mcpu:int -> (unit, string) result
(** Dynamic repartitioning (§2: the kernels "dynamically partition CPU and
    memory resources"): resize the rgpdOS and general-purpose kernels'
    CPU shares.  Fails if the request exceeds the machine total. *)

val cpu_partitions : t -> (string * int * int) list
(** [(kernel, cpu_millis, mem_pages)] for every sub-kernel. *)
