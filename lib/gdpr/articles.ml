type t =
  | Art5_1c_minimisation
  | Art5_1e_storage_limitation
  | Art6_lawfulness
  | Art7_consent
  | Art15_access
  | Art16_rectification
  | Art17_erasure
  | Art18_restriction
  | Art20_portability
  | Art25_by_design
  | Art32_security

let all =
  [
    Art5_1c_minimisation; Art5_1e_storage_limitation; Art6_lawfulness;
    Art7_consent; Art15_access; Art16_rectification; Art17_erasure;
    Art18_restriction; Art20_portability; Art25_by_design; Art32_security;
  ]

let to_string = function
  | Art5_1c_minimisation -> "Art. 5(1)(c)"
  | Art5_1e_storage_limitation -> "Art. 5(1)(e)"
  | Art6_lawfulness -> "Art. 6"
  | Art7_consent -> "Art. 7"
  | Art15_access -> "Art. 15"
  | Art16_rectification -> "Art. 16"
  | Art17_erasure -> "Art. 17"
  | Art18_restriction -> "Art. 18"
  | Art20_portability -> "Art. 20"
  | Art25_by_design -> "Art. 25"
  | Art32_security -> "Art. 32"

let description = function
  | Art5_1c_minimisation -> "data minimisation"
  | Art5_1e_storage_limitation -> "storage limitation"
  | Art6_lawfulness -> "lawfulness of processing"
  | Art7_consent -> "conditions for consent"
  | Art15_access -> "right of access by the data subject"
  | Art16_rectification -> "right to rectification"
  | Art17_erasure -> "right to erasure (right to be forgotten)"
  | Art18_restriction -> "right to restriction of processing"
  | Art20_portability -> "right to data portability"
  | Art25_by_design -> "data protection by design and by default"
  | Art32_security -> "security of processing"

let mechanism = function
  | Art5_1c_minimisation -> "schema views + membrane consent scopes + DED projection"
  | Art5_1e_storage_limitation -> "membrane TTL + storage-limitation sweeper"
  | Art6_lawfulness -> "purpose declarations carry a legal basis; PS rejects purposeless functions"
  | Art7_consent -> "per-purpose consents in the PD membrane; withdrawal built-ins"
  | Art15_access -> "DBFS structured export + hash-chained processing log"
  | Art16_rectification -> "built-in update (membrane-checked, zeroing rewrite)"
  | Art17_erasure -> "crypto-erasure under the authority's public key + zeroing delete"
  | Art18_restriction -> "membrane restriction flag: every purpose refused, data retained"
  | Art20_portability -> "typed DBFS records export as structured machine-readable JSON"
  | Art25_by_design -> "every application on rgpdOS inherits the enforcement rules"
  | Art32_security -> "LSM mediation of DBFS + seccomp policies on F_pd functions"

let pp fmt a = Format.pp_print_string fmt (to_string a)
