(** Storage-limitation sweeper (GDPR art. 5(1)(e)).

    The membrane's time-to-live "is directly requested by the GDPR and can
    be used to implement the right to be forgotten" (§2).  The sweeper
    scans every membrane and removes PD whose TTL has elapsed, either
    physically or by crypto-erasure. *)

type mode =
  | Physical_delete
  | Crypto_erase of (Rgpdos_dbfs.Record.t -> string)
      (** the authority sealer *)

type report = {
  scanned : int;
  expired : int;
  removed : int;
  errors : (string * string) list;  (** (pd_id, error) *)
}

val sweep :
  dbfs:Rgpdos_dbfs.Dbfs.t ->
  audit:Rgpdos_audit.Audit_log.t ->
  now:Rgpdos_util.Clock.ns ->
  mode:mode ->
  unit ->
  report
(** Scans every non-erased PD entry (membranes only, data blocks untouched
    for non-expired PD) and removes the expired ones, logging each removal
    in the audit chain. *)
