(** Storage-limitation sweeper (GDPR art. 5(1)(e)).

    The membrane's time-to-live "is directly requested by the GDPR and can
    be used to implement the right to be forgotten" (§2).  The sweeper
    scans every membrane and removes PD whose TTL has elapsed, either
    physically or by crypto-erasure. *)

type mode =
  | Physical_delete
  | Crypto_erase of (Rgpdos_dbfs.Record.t -> string)
      (** the authority sealer *)

type report = {
  scanned : int;
  expired : int;
  removed : int;
  errors : (string * string) list;  (** (pd_id, error) *)
}

val sweep :
  dbfs:Rgpdos_dbfs.Dbfs.t ->
  audit:Rgpdos_audit.Audit_log.t ->
  now:Rgpdos_util.Clock.ns ->
  mode:mode ->
  ?incremental:bool ->
  unit ->
  report
(** Removes expired PD, logging each removal in the audit chain.

    [incremental] (the default) pops only the due entries off DBFS's TTL
    expiry min-queue ({!Rgpdos_dbfs.Dbfs.expired_pds}), so a sweep costs
    O(expired) rather than O(population); [report.scanned] counts the
    queue candidates.  The membrane remains the authority — each
    candidate's membrane is re-checked with [Membrane.expired] before
    removal, and a pd whose removal fails stays queued for the next
    sweep.

    [~incremental:false] preserves the legacy full scan over every
    non-erased membrane (measurement baseline; identical outcome). *)
