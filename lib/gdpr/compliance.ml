type evidence = {
  expired_live_pd : int;
  membraneless_pd : int;
  audit_chain_ok : bool;
  forensic_leaks_after_erasure : int;
  unconsented_accesses : int;
  exports_machine_readable : bool;
  minimisation_enforced : bool;
}

let clean =
  {
    expired_live_pd = 0;
    membraneless_pd = 0;
    audit_chain_ok = true;
    forensic_leaks_after_erasure = 0;
    unconsented_accesses = 0;
    exports_machine_readable = true;
    minimisation_enforced = true;
  }

type verdict = { article : Articles.t; ok : bool; detail : string }

let evaluate e =
  [
    {
      article = Articles.Art5_1c_minimisation;
      ok = e.minimisation_enforced;
      detail =
        (if e.minimisation_enforced then "processings only see consented views"
         else "processings can read fields beyond the consented view");
    };
    {
      article = Articles.Art5_1e_storage_limitation;
      ok = e.expired_live_pd = 0;
      detail = Printf.sprintf "%d expired PD still live" e.expired_live_pd;
    };
    {
      article = Articles.Art6_lawfulness;
      ok = e.unconsented_accesses = 0;
      detail =
        Printf.sprintf "%d accesses without a lawful basis" e.unconsented_accesses;
    };
    {
      article = Articles.Art7_consent;
      ok = e.unconsented_accesses = 0 && e.membraneless_pd = 0;
      detail =
        Printf.sprintf "%d unconsented accesses, %d PD without consent metadata"
          e.unconsented_accesses e.membraneless_pd;
    };
    {
      article = Articles.Art15_access;
      ok = e.audit_chain_ok && e.exports_machine_readable;
      detail =
        (if e.audit_chain_ok then "processing log verifies"
         else "processing log corrupted or absent");
    };
    {
      article = Articles.Art17_erasure;
      ok = e.forensic_leaks_after_erasure = 0;
      detail =
        Printf.sprintf "%d forensic remnants of erased PD"
          e.forensic_leaks_after_erasure;
    };
    {
      article = Articles.Art20_portability;
      ok = e.exports_machine_readable;
      detail =
        (if e.exports_machine_readable then
           "exports are structured and machine-readable"
         else "exports lack structure or meaningful keys");
    };
    {
      article = Articles.Art32_security;
      ok = e.membraneless_pd = 0;
      detail = Printf.sprintf "%d PD stored outside the protection wrapper" e.membraneless_pd;
    };
  ]

let all_ok verdicts = List.for_all (fun v -> v.ok) verdicts

let pp_verdict fmt v =
  Format.fprintf fmt "%s (%s): %s — %s"
    (Articles.to_string v.article)
    (Articles.description v.article)
    (if v.ok then "PASS" else "VIOLATION")
    v.detail

let summary verdicts =
  let total = List.length verdicts in
  let passed = List.length (List.filter (fun v -> v.ok) verdicts) in
  let violations =
    verdicts
    |> List.filter (fun v -> not v.ok)
    |> List.map (fun v -> Articles.to_string v.article)
  in
  if violations = [] then Printf.sprintf "%d/%d articles satisfied" passed total
  else
    Printf.sprintf "%d/%d articles satisfied; violations: %s" passed total
      (String.concat ", " violations)
