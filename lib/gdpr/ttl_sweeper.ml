module Dbfs = Rgpdos_dbfs.Dbfs
module Membrane = Rgpdos_membrane.Membrane
module Audit_log = Rgpdos_audit.Audit_log

type mode = Physical_delete | Crypto_erase of (Rgpdos_dbfs.Record.t -> string)

type report = {
  scanned : int;
  expired : int;
  removed : int;
  errors : (string * string) list;
}

let actor = "ded" (* the sweeper is an rgpdOS built-in and runs as the DED *)

(* Check-and-remove one expired candidate.  The membrane read double-checks
   [Membrane.expired] even on the incremental path: the expiry queue is an
   index, the membrane stays the authority. *)
let remove_one ~dbfs ~audit ~now ~mode ~expired ~removed ~errors pd_id =
  match Dbfs.get_membrane dbfs ~actor pd_id with
  | Error e -> errors := (pd_id, Dbfs.error_to_string e) :: !errors
  | Ok m ->
      if Membrane.expired m ~now then begin
        incr expired;
        let result =
          match mode with
          | Physical_delete -> Dbfs.delete dbfs ~actor pd_id
          | Crypto_erase seal -> Dbfs.erase_with dbfs ~actor pd_id ~seal
        in
        match result with
        | Ok () ->
            incr removed;
            let mode_str =
              match mode with
              | Physical_delete -> "physical"
              | Crypto_erase _ -> "crypto"
            in
            ignore
              (Audit_log.append audit ~now ~actor
                 (Audit_log.Erased { pd_id; mode = mode_str }))
        | Error e -> errors := (pd_id, Dbfs.error_to_string e) :: !errors
      end

let sweep ~dbfs ~audit ~now ~mode ?(incremental = true) () =
  let expired = ref 0 and removed = ref 0 in
  let errors = ref [] in
  if incremental then begin
    (* O(expired): pop only the due entries off the TTL expiry queue.
       Removal (delete/erase) clears each pd's queue entry as part of the
       journalled op; a pd whose removal fails stays queued and is
       retried on the next sweep. *)
    let due =
      match Dbfs.expired_pds dbfs ~actor ~now with
      | Ok ids -> ids
      | Error _ -> []
    in
    let scanned = ref 0 in
    List.iter
      (fun pd_id ->
        match Dbfs.entry_info dbfs ~actor pd_id with
        | Error _ | Ok (_, _, true) -> ()
        | Ok (_, _, false) ->
            incr scanned;
            remove_one ~dbfs ~audit ~now ~mode ~expired ~removed ~errors pd_id)
      due;
    {
      scanned = !scanned;
      expired = !expired;
      removed = !removed;
      errors = !errors;
    }
  end
  else begin
    (* legacy full scan: every non-erased membrane, O(population) *)
    let all_pds =
      match Dbfs.list_types dbfs ~actor with
      | Error _ -> []
      | Ok types ->
          List.concat_map
            (fun ty ->
              match Dbfs.list_pds dbfs ~actor ty with
              | Ok ids -> ids
              | Error _ -> [])
            types
    in
    let scanned = ref 0 in
    List.iter
      (fun pd_id ->
        match Dbfs.entry_info dbfs ~actor pd_id with
        | Error _ -> ()
        | Ok (_, _, true) -> () (* already erased *)
        | Ok (_, _, false) ->
            incr scanned;
            remove_one ~dbfs ~audit ~now ~mode ~expired ~removed ~errors pd_id)
      all_pds;
    {
      scanned = !scanned;
      expired = !expired;
      removed = !removed;
      errors = !errors;
    }
  end
