module Dbfs = Rgpdos_dbfs.Dbfs
module Membrane = Rgpdos_membrane.Membrane
module Audit_log = Rgpdos_audit.Audit_log

type mode = Physical_delete | Crypto_erase of (Rgpdos_dbfs.Record.t -> string)

type report = {
  scanned : int;
  expired : int;
  removed : int;
  errors : (string * string) list;
}

let actor = "ded" (* the sweeper is an rgpdOS built-in and runs as the DED *)

let sweep ~dbfs ~audit ~now ~mode () =
  let all_pds =
    match Dbfs.list_types dbfs ~actor with
    | Error _ -> []
    | Ok types ->
        List.concat_map
          (fun ty ->
            match Dbfs.list_pds dbfs ~actor ty with Ok ids -> ids | Error _ -> [])
          types
  in
  let scanned = ref 0 and expired = ref 0 and removed = ref 0 in
  let errors = ref [] in
  List.iter
    (fun pd_id ->
      match Dbfs.entry_info dbfs ~actor pd_id with
      | Error _ -> ()
      | Ok (_, _, true) -> () (* already erased *)
      | Ok (_, _, false) -> (
          incr scanned;
          match Dbfs.get_membrane dbfs ~actor pd_id with
          | Error e -> errors := (pd_id, Dbfs.error_to_string e) :: !errors
          | Ok m ->
              if Membrane.expired m ~now then begin
                incr expired;
                let result =
                  match mode with
                  | Physical_delete -> Dbfs.delete dbfs ~actor pd_id
                  | Crypto_erase seal -> Dbfs.erase_with dbfs ~actor pd_id ~seal
                in
                match result with
                | Ok () ->
                    incr removed;
                    let mode_str =
                      match mode with
                      | Physical_delete -> "physical"
                      | Crypto_erase _ -> "crypto"
                    in
                    ignore
                      (Audit_log.append audit ~now ~actor
                         (Audit_log.Erased { pd_id; mode = mode_str }))
                | Error e ->
                    errors := (pd_id, Dbfs.error_to_string e) :: !errors
              end))
    all_pds;
  { scanned = !scanned; expired = !expired; removed = !removed; errors = !errors }
