(** Per-article compliance checker.

    A system under test (the rgpdOS machine, or the Fig-2 baseline)
    produces an {!evidence} record from its own state; [evaluate] turns it
    into article-by-article verdicts.  Experiments E3/E7 feed both systems
    through this to show the paper's qualitative claim: the baseline
    violates, rgpdOS does not. *)

type evidence = {
  expired_live_pd : int;
      (** PD past its TTL still readable (art. 5(1)(e)) *)
  membraneless_pd : int;
      (** stored PD without a valid membrane (arts. 25/32 wrapper rule) *)
  audit_chain_ok : bool;
      (** the processing log verifies (art. 15 accountability) *)
  forensic_leaks_after_erasure : int;
      (** erased subjects' PD still recoverable from the medium (art. 17) *)
  unconsented_accesses : int;
      (** processings that read PD against its consents (arts. 6/7) *)
  exports_machine_readable : bool;
      (** access/portability exports are structured with meaningful keys
          (arts. 15/20) *)
  minimisation_enforced : bool;
      (** processings only see consented views (art. 5(1)(c)) *)
}

val clean : evidence
(** The all-green evidence, as a base for building test cases. *)

type verdict = { article : Articles.t; ok : bool; detail : string }

val evaluate : evidence -> verdict list
(** One verdict per checkable article (rectification and by-design are
    reported as mechanisms, not violations, and always reflect the
    surrounding fields). *)

val all_ok : verdict list -> bool

val pp_verdict : Format.formatter -> verdict -> unit

val summary : verdict list -> string
(** e.g. "7/8 articles satisfied; violations: Art. 17". *)
