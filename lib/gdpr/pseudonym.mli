(** Pseudonymisation and generalisation helpers.

    ENISA classifies rgpdOS as a Privacy Enhancing Technology; these are
    the record-level PET primitives the machine offers processings that
    produce research or analytics datasets from PD:

    - {b keyed pseudonyms}: HMAC-SHA256 under an operator-held key.
      Deterministic (the same subject always maps to the same pseudonym,
      so longitudinal analyses work) but irreversible without the key,
      and unlinkable across operators using different keys — GDPR art.
      4(5) pseudonymisation.
    - {b generalisation}: coarsen quasi-identifiers (years to decades,
      integers to buckets) so that small groups blur into larger ones.

    A pseudonymised record is still personal data under the GDPR (the key
    re-links it); these helpers reduce risk, they do not exit the
    regulation — which is why the output still goes through DBFS with a
    membrane. *)

type key

val key_of_string : string -> key
(** Derive a pseudonymisation key from operator secret material. *)

val random_key : Rgpdos_util.Prng.t -> key

val pseudonym : key -> string -> string
(** [pseudonym k ident] is a stable 16-hex-char pseudonym for [ident]
    under [k]. *)

val pseudonymize_fields :
  key -> fields:string list -> Rgpdos_dbfs.Record.t -> Rgpdos_dbfs.Record.t
(** Replace the string values of the named fields by their pseudonyms;
    other fields pass through. *)

val generalize_int :
  bucket:int -> field:string -> Rgpdos_dbfs.Record.t -> Rgpdos_dbfs.Record.t
(** Round the named int field down to a multiple of [bucket] (e.g.
    [bucket:10] turns 1987 into 1980).
    @raise Invalid_argument if [bucket <= 0]. *)

val k_anonymous_by : ('a -> 'b) -> 'a list -> k:int -> bool
(** [k_anonymous_by quasi rows ~k]: does every equivalence class of rows
    under the quasi-identifier projection contain at least [k] rows?  The
    check a release pipeline runs before publishing a generalised
    dataset. *)
