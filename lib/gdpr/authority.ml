module Prng = Rgpdos_util.Prng
module Rsa = Rgpdos_crypto.Rsa
module Envelope = Rgpdos_crypto.Envelope
module Record = Rgpdos_dbfs.Record

type t = { keypair : Rsa.keypair }

let create ?(key_bits = 256) ~seed () =
  let prng = Prng.create ~seed () in
  { keypair = Rsa.generate ~bits:key_bits prng }

let public_key t = t.keypair.Rsa.public

let key_fingerprint t = Rsa.fingerprint t.keypair.Rsa.public

let seal t ~prng payload = Envelope.seal prng t.keypair.Rsa.public payload

let sealer t ~prng record =
  Envelope.encode (seal t ~prng (Record.encode record))

let open_envelope t bytes =
  match Envelope.decode bytes with
  | Error e -> Error e
  | Ok env -> Envelope.open_ t.keypair.Rsa.private_ env

let open_record t bytes =
  match open_envelope t bytes with
  | Error e -> Error e
  | Ok payload -> Record.decode payload
