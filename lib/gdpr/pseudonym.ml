module Sha256 = Rgpdos_crypto.Sha256
module Hex = Rgpdos_util.Hex
module Prng = Rgpdos_util.Prng
module Record = Rgpdos_dbfs.Record
module Value = Rgpdos_dbfs.Value

type key = string

let key_of_string s = Sha256.digest ("rgpdos-pseudonym-key|" ^ s)

let random_key prng = Prng.bytes prng 32

let pseudonym key ident =
  String.sub (Hex.encode (Sha256.hmac ~key ident)) 0 16

let pseudonymize_fields key ~fields record =
  List.map
    (fun (name, v) ->
      match v with
      | Value.VString s when List.mem name fields ->
          (name, Value.VString (pseudonym key s))
      | _ -> (name, v))
    record

let generalize_int ~bucket ~field record =
  if bucket <= 0 then invalid_arg "Pseudonym.generalize_int: bucket <= 0";
  List.map
    (fun (name, v) ->
      match v with
      | Value.VInt i when name = field ->
          let rounded = i - (((i mod bucket) + bucket) mod bucket) in
          (name, Value.VInt rounded)
      | _ -> (name, v))
    record

let k_anonymous_by quasi rows ~k =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun row ->
      let q = quasi row in
      let n = Option.value ~default:0 (Hashtbl.find_opt groups q) in
      Hashtbl.replace groups q (n + 1))
    rows;
  Hashtbl.fold (fun _ n acc -> acc && n >= k) groups true
