(** The supervisory authority of the paper's §4 erasure model.

    "Each data operator owns a public encryption key given to them by the
    authorities who keep the private key": the authority mints keypairs,
    hands operators the public half, and can later open sealed envelopes
    (e.g. for a legal investigation). *)

type t

val create : ?key_bits:int -> seed:int64 -> unit -> t
(** Deterministic from the seed; default 256-bit keys (simulation scale). *)

val public_key : t -> Rgpdos_crypto.Rsa.public_key
(** What the data operator receives. *)

val key_fingerprint : t -> string

val seal :
  t -> prng:Rgpdos_util.Prng.t -> string -> Rgpdos_crypto.Envelope.t
(** Operator-side sealing helper (uses only the public key). *)

val sealer :
  t -> prng:Rgpdos_util.Prng.t ->
  (Rgpdos_dbfs.Record.t -> string)
(** The [seal] callback DBFS's [erase_with] expects: encodes the record,
    seals it, returns the envelope bytes that replace the plaintext. *)

val open_envelope : t -> string -> (string, string) result
(** Authority-side: decode + decrypt envelope bytes (the legal-
    investigation path).  Only the authority can do this. *)

val open_record :
  t -> string -> (Rgpdos_dbfs.Record.t, string) result
(** [open_envelope] followed by record decoding. *)
