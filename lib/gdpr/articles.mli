(** The GDPR articles the paper's mechanisms map to.

    rgpdOS's pitch is that the data operator deals with {i technical
    rules}, and the OS translates them into compliance with the Law; this
    module is the translation table the compliance checker reports
    against. *)

type t =
  | Art5_1c_minimisation       (** data minimisation — views/membrane scopes *)
  | Art5_1e_storage_limitation (** storage limitation — TTL sweeper *)
  | Art6_lawfulness            (** lawful basis — purpose legal_basis *)
  | Art7_consent               (** conditions for consent — membrane consents *)
  | Art15_access               (** right of access — DBFS export + audit log *)
  | Art16_rectification        (** right to rectification — builtin update *)
  | Art17_erasure              (** right to be forgotten — crypto-erasure *)
  | Art18_restriction          (** restriction of processing — membrane flag *)
  | Art20_portability          (** structured, machine-readable export *)
  | Art25_by_design            (** data protection by design — the OS itself *)
  | Art32_security             (** security of processing — LSM + seccomp *)

val all : t list
val to_string : t -> string
val description : t -> string
val mechanism : t -> string
(** The rgpdOS mechanism that implements the article. *)

val pp : Format.formatter -> t -> unit
