type partition = {
  owner : string;
  mutable cpu : int;
  mutable mem : int;
  mutable live : bool;
}

type t = {
  total_cpu : int;
  total_mem : int;
  mutable parts : partition list;
}

let create ~cpu_millis ~mem_pages =
  if cpu_millis <= 0 || mem_pages <= 0 then
    invalid_arg "Resource.create: non-positive totals";
  { total_cpu = cpu_millis; total_mem = mem_pages; parts = [] }

let used_cpu t =
  List.fold_left (fun acc p -> if p.live then acc + p.cpu else acc) 0 t.parts

let used_mem t =
  List.fold_left (fun acc p -> if p.live then acc + p.mem else acc) 0 t.parts

let free_cpu t = t.total_cpu - used_cpu t
let free_mem t = t.total_mem - used_mem t

let claim t ~owner ~cpu_millis ~mem_pages =
  if cpu_millis < 0 || mem_pages < 0 then Error "negative resource request"
  else if cpu_millis > free_cpu t then
    Error
      (Printf.sprintf "cpu exhausted: %s wants %d, %d free" owner cpu_millis
         (free_cpu t))
  else if mem_pages > free_mem t then
    Error
      (Printf.sprintf "memory exhausted: %s wants %d pages, %d free" owner
         mem_pages (free_mem t))
  else begin
    let p = { owner; cpu = cpu_millis; mem = mem_pages; live = true } in
    t.parts <- p :: t.parts;
    Ok p
  end

let resize t p ~cpu_millis ~mem_pages =
  if not p.live then Error "partition already released"
  else if cpu_millis < 0 || mem_pages < 0 then Error "negative resource request"
  else
    let cpu_delta = cpu_millis - p.cpu in
    let mem_delta = mem_pages - p.mem in
    if cpu_delta > free_cpu t then Error "cpu exhausted for resize"
    else if mem_delta > free_mem t then Error "memory exhausted for resize"
    else begin
      p.cpu <- cpu_millis;
      p.mem <- mem_pages;
      Ok ()
    end

let release _t p =
  p.live <- false;
  p.cpu <- 0;
  p.mem <- 0

let owner p = p.owner
let cpu_millis p = p.cpu
let mem_pages p = p.mem

let partitions t =
  t.parts
  |> List.filter_map (fun p -> if p.live then Some (p.owner, p.cpu, p.mem) else None)
  |> List.sort compare

let invariant_ok t = used_cpu t <= t.total_cpu && used_mem t <= t.total_mem
