(** Simulated syscall surface and seccomp-style filters.

    rgpdOS "leverages Linux Seccomp BPF to avoid functions which operate on
    PD to perform syscalls that can leak data" (§3(2)).  Here the machine's
    syscall table is a closed sum type and a filter is an allow-list; the
    DED installs {!fpd_reader_policy} before running data-operator code, so
    a processing that tries to [write] or [send] PD out of its domain is
    killed exactly as seccomp would kill it. *)

type t =
  | Sys_read_pd        (** read PD from the DED-provided buffer *)
  | Sys_return_value   (** produce the processing's result *)
  | Sys_alloc          (** memory allocation *)
  | Sys_gettime
  | Sys_log_public     (** write a non-PD log line *)
  | Sys_file_write     (** write to the general filesystem — can leak PD *)
  | Sys_file_read
  | Sys_net_send       (** network egress — can leak PD *)
  | Sys_net_recv
  | Sys_spawn          (** start another process *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val all : t list

module Policy : sig
  type syscall = t

  type t

  val of_allowed : syscall list -> t

  val allow_all : t

  val fpd_reader_policy : t
  (** The policy for data-operator [F_pd^r] functions: compute-only —
      reading the provided PD, allocating, telling time and returning a
      value are allowed; every data-egress syscall (file write, network
      send, spawn) is denied. *)

  val builtin_policy : t
  (** Policy for rgpdOS built-ins ([F_pd^w]): they may also read/write
      through the DED's storage interface, but still no network egress. *)

  val check : t -> syscall -> (unit, string) result
  (** [Error] carries a seccomp-style violation message. *)

  val allows : t -> syscall -> bool
end
