(** Sub-kernel descriptors for the purpose-kernel model (§2).

    The machine kernel is the aggregation of sub-kernels of three kinds:
    IO-driver kernels (one per device, holding just the driver), a
    general-purpose kernel for non-personal data, and the rgpdOS kernel
    for PD.  Each sub-kernel owns a resource partition and a syscall
    policy; the machine wires them together with {!Ipc} channels. *)

type kind =
  | Io_driver of string  (** the device it drives, e.g. "nvme0" *)
  | General_purpose
  | Rgpd

type t = {
  id : string;
  kind : kind;
  partition : Resource.partition;
  policy : Syscall.Policy.t;
  cores : int;
      (** independent cores the scheduler may run in parallel; each core
          runs at the partition's full mcpu share, so [busy] time (an
          aggregate of core-time) is core-count independent while the
          virtual clock advances by the per-round critical path *)
  counters : Rgpdos_util.Stats.Counter.t;
}

val make :
  id:string -> kind:kind -> partition:Resource.partition ->
  policy:Syscall.Policy.t -> ?cores:int -> unit -> t
(** Default [cores = 1] (the pre-multicore behaviour).
    @raise Invalid_argument if [cores < 1]. *)

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit

val handles_pd : t -> bool
(** PD may only be processed on the rgpdOS kernel; PD also traverses the
    IO-driver kernels (which is why the paper removes IO devices from the
    general-purpose kernel). *)
