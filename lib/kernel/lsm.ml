type decision = Allow | Deny

type rule = { actor : string; klass : string; op : string }

type t = {
  default : decision;
  mutable allows : rule list;
  mutable denies : rule list;
  mutable denied_log : (string * string * string) list;
}

let create ?(default = Deny) () =
  { default; allows = []; denies = []; denied_log = [] }

let allow t ~actor ~klass ~op = t.allows <- { actor; klass; op } :: t.allows

let deny t ~actor ~klass ~op = t.denies <- { actor; klass; op } :: t.denies

let rule_matches rule ~actor ~klass ~op =
  let m pat v = pat = "*" || pat = v in
  m rule.actor actor && m rule.klass klass && m rule.op op

let check t ~actor ~klass ~op =
  let verdict =
    if List.exists (fun r -> rule_matches r ~actor ~klass ~op) t.denies then
      Deny
    else if List.exists (fun r -> rule_matches r ~actor ~klass ~op) t.allows
    then Allow
    else t.default
  in
  match verdict with
  | Allow -> true
  | Deny ->
      t.denied_log <- (actor, klass, op) :: t.denied_log;
      false

let denials t = t.denied_log

let denial_count t = List.length t.denied_log

let as_dbfs_hook t ~actor ~op = check t ~actor ~klass:"dbfs" ~op
