(** Message channels between sub-kernels.

    The purpose-kernel model (§2) splits the machine kernel into
    cooperating sub-kernels (IO-driver kernels, a general-purpose kernel,
    the rgpdOS kernel).  They communicate over these bounded, typed
    channels; every transfer charges simulated time, so the cost of the
    split shows up in experiment E9. *)

type 'a t

val create :
  clock:Rgpdos_util.Clock.t ->
  ?capacity:int ->
  ?latency:Rgpdos_util.Clock.ns ->
  name:string ->
  unit ->
  'a t
(** Default capacity 64 messages, default latency 2us per transfer (an
    inter-core notification plus a cache-line handoff). *)

val name : _ t -> string

val send : 'a t -> 'a -> (unit, string) result
(** [Error] when the channel is full (backpressure). *)

val recv : 'a t -> 'a option
(** FIFO; [None] when empty. *)

val length : _ t -> int
val total_sent : _ t -> int
