(** LSM-style mandatory access control.

    §3(2): rgpdOS relies on the Linux Security Module framework (SELinux /
    Smack would do the job) to block every direct access to DBFS from
    outside the DED.  This module is the mediation layer: objects register
    classes ("dbfs", "processing_store", ...), the machine loads a policy
    of (actor, class, op) rules, and every component calls {!check} at its
    entry points.  Denials are counted and remembered for the audit
    trail. *)

type decision = Allow | Deny

type t

val create : ?default:decision -> unit -> t
(** [default] applies when no rule matches; the machine uses [Deny]
    (deny-by-default, as the paper's enforcement section requires).  The
    default default is [Deny]. *)

val allow : t -> actor:string -> klass:string -> op:string -> unit
(** Add an allow rule.  ["*"] acts as a wildcard for any position. *)

val deny : t -> actor:string -> klass:string -> op:string -> unit
(** Add a deny rule; deny rules take precedence over allow rules. *)

val check : t -> actor:string -> klass:string -> op:string -> bool

val denials : t -> (string * string * string) list
(** Most recent first: the (actor, class, op) triples that were denied. *)

val denial_count : t -> int

val as_dbfs_hook : t -> actor:string -> op:string -> bool
(** Convenience adaptor for [Dbfs.set_access_hook] (class "dbfs"). *)
