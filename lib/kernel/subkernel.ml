type kind = Io_driver of string | General_purpose | Rgpd

type t = {
  id : string;
  kind : kind;
  partition : Resource.partition;
  policy : Syscall.Policy.t;
  cores : int;
  counters : Rgpdos_util.Stats.Counter.t;
}

let make ~id ~kind ~partition ~policy ?(cores = 1) () =
  if cores < 1 then invalid_arg "Subkernel.make: cores must be >= 1";
  {
    id;
    kind;
    partition;
    policy;
    cores;
    counters = Rgpdos_util.Stats.Counter.create ();
  }

let kind_to_string = function
  | Io_driver dev -> "io-driver(" ^ dev ^ ")"
  | General_purpose -> "general-purpose"
  | Rgpd -> "rgpdos"

let pp fmt k =
  Format.fprintf fmt "%s [%s, %d mcpu x%d cores, %d pages]" k.id
    (kind_to_string k.kind)
    (Resource.cpu_millis k.partition)
    k.cores
    (Resource.mem_pages k.partition)

let handles_pd k =
  match k.kind with Rgpd | Io_driver _ -> true | General_purpose -> false
