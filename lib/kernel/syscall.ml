type t =
  | Sys_read_pd
  | Sys_return_value
  | Sys_alloc
  | Sys_gettime
  | Sys_log_public
  | Sys_file_write
  | Sys_file_read
  | Sys_net_send
  | Sys_net_recv
  | Sys_spawn

let to_string = function
  | Sys_read_pd -> "read_pd"
  | Sys_return_value -> "return_value"
  | Sys_alloc -> "alloc"
  | Sys_gettime -> "gettime"
  | Sys_log_public -> "log_public"
  | Sys_file_write -> "file_write"
  | Sys_file_read -> "file_read"
  | Sys_net_send -> "net_send"
  | Sys_net_recv -> "net_recv"
  | Sys_spawn -> "spawn"

let pp fmt s = Format.pp_print_string fmt (to_string s)

let all =
  [
    Sys_read_pd; Sys_return_value; Sys_alloc; Sys_gettime; Sys_log_public;
    Sys_file_write; Sys_file_read; Sys_net_send; Sys_net_recv; Sys_spawn;
  ]

module Policy = struct
  type syscall = t

  type nonrec t = { allowed : t list }

  let of_allowed allowed = { allowed }

  let allow_all = { allowed = all }

  let fpd_reader_policy =
    of_allowed [ Sys_read_pd; Sys_return_value; Sys_alloc; Sys_gettime; Sys_log_public ]

  let builtin_policy =
    of_allowed
      [ Sys_read_pd; Sys_return_value; Sys_alloc; Sys_gettime; Sys_log_public;
        Sys_file_read; Sys_file_write ]

  let allows p sc = List.mem sc p.allowed

  let check p sc =
    if allows p sc then Ok ()
    else
      Error
        (Printf.sprintf "seccomp: syscall %s blocked by policy" (to_string sc))
end
