module Clock = Rgpdos_util.Clock

type data_class = Pd | Npd | Io of string

type job = { job_id : string; data_class : data_class; work : Clock.ns }

type running = { job : job; mutable remaining : Clock.ns }

type kstate = {
  kernel : Subkernel.t;
  queue : running Queue.t;
  mutable busy : Clock.ns;
}

type t = {
  clock : Clock.t;
  kernels : kstate list;
  mutable completed_rev : string list;
}

let create ~clock ~kernels =
  {
    clock;
    kernels =
      List.map (fun k -> { kernel = k; queue = Queue.create (); busy = 0 }) kernels;
    completed_rev = [];
  }

let eligible data_class k =
  match (data_class, k.kernel.Subkernel.kind) with
  | Pd, Subkernel.Rgpd -> true
  | Npd, Subkernel.General_purpose -> true
  | Io dev, Subkernel.Io_driver d -> d = dev
  | (Pd | Npd | Io _), _ -> false

(* place on the eligible kernel with the shortest queue *)
let submit t job =
  let candidates = List.filter (eligible job.data_class) t.kernels in
  match candidates with
  | [] ->
      Error
        (Printf.sprintf "no kernel can run %s job %s"
           (match job.data_class with
            | Pd -> "PD"
            | Npd -> "NPD"
            | Io dev -> "IO(" ^ dev ^ ")")
           job.job_id)
  | first :: rest ->
      let best =
        List.fold_left
          (fun best k ->
            if Queue.length k.queue < Queue.length best.queue then k else best)
          first rest
      in
      Queue.push { job; remaining = job.work } best.queue;
      Rgpdos_util.Stats.Counter.incr best.kernel.Subkernel.counters "jobs";
      Ok ()

let idle t = List.for_all (fun k -> Queue.is_empty k.queue) t.kernels

(* One round: every kernel runs up to [cores] head jobs, each for up to
   one quantum, scaled by its CPU share (1000 mcpu = 1x per-core speed).
   [busy] accumulates the SUM of the core walls (aggregate core-time, so
   it is identical to the sequential total at any core count), while the
   clock advances by the longest wall any core anywhere spent — the
   per-round critical path. *)
let run_round t quantum =
  let max_wall = ref 0 in
  List.iter
    (fun k ->
      let cores = max 1 k.kernel.Subkernel.cores in
      let mcpu = max 1 (Resource.cpu_millis k.kernel.Subkernel.partition) in
      (* detach up to [cores] jobs from the head, preserving order *)
      let rec take acc n =
        if n = 0 then List.rev acc
        else
          match Queue.take_opt k.queue with
          | None -> List.rev acc
          | Some r -> take (r :: acc) (n - 1)
      in
      let running = take [] cores in
      let survivors = Queue.create () in
      List.iter
        (fun r ->
          let slice = min r.remaining quantum in
          (* wall time = cpu time / share *)
          let wall = slice * 1000 / mcpu in
          r.remaining <- r.remaining - slice;
          k.busy <- k.busy + wall;
          if wall > !max_wall then max_wall := wall;
          if r.remaining <= 0 then
            t.completed_rev <- r.job.job_id :: t.completed_rev
          else Queue.push r survivors)
        running;
      (* unfinished jobs return to the head, ahead of the waiting tail *)
      Queue.transfer k.queue survivors;
      Queue.transfer survivors k.queue)
    t.kernels;
  Clock.advance t.clock !max_wall

let run_until_idle t ?(quantum = 1_000_000) () =
  while not (idle t) do
    run_round t quantum
  done

let completed t = List.rev t.completed_rev

let kernel_busy_time t =
  t.kernels
  |> List.map (fun k -> (k.kernel.Subkernel.id, k.busy))
  |> List.sort compare
