module Clock = Rgpdos_util.Clock
module Counter = Rgpdos_util.Stats.Counter

type data_class = Pd | Npd | Io of string

type job = { job_id : string; data_class : data_class; work : Clock.ns }

type policy = Fifo | Edf

type running = {
  job : job;
  mutable remaining : Clock.ns;
  deadline : Clock.ns option;  (* absolute simulated deadline *)
  seq : int;                   (* global submission order *)
  mutable started : bool;      (* ran at least one slice *)
}

type kstate = {
  kernel : Subkernel.t;
  queue : running Queue.t;
  mutable busy : Clock.ns;
}

type t = {
  clock : Clock.t;
  kernels : kstate list;
  mutable policy : policy;
  mutable completed_rev : string list;
  mutable completions_rev : (string * Clock.ns) list;
  mutable next_seq : int;
  mutable max_queue_depth : int;
  counters : Counter.t;
}

let counter_names =
  [ "preemptions"; "deadline_misses"; "rights_jobs"; "max_queue_depth" ]

let create ~clock ~kernels =
  {
    clock;
    kernels =
      List.map (fun k -> { kernel = k; queue = Queue.create (); busy = 0 }) kernels;
    policy = Fifo;
    completed_rev = [];
    completions_rev = [];
    next_seq = 0;
    max_queue_depth = 0;
    counters = Counter.create ();
  }

let policy t = t.policy

let set_policy t p = t.policy <- p

let eligible data_class k =
  match (data_class, k.kernel.Subkernel.kind) with
  | Pd, Subkernel.Rgpd -> true
  | Npd, Subkernel.General_purpose -> true
  | Io dev, Subkernel.Io_driver d -> d = dev
  | (Pd | Npd | Io _), _ -> false

(* place on the eligible kernel with the shortest queue *)
let submit t ?deadline job =
  let candidates = List.filter (eligible job.data_class) t.kernels in
  match candidates with
  | [] ->
      Error
        (Printf.sprintf "no kernel can run %s job %s"
           (match job.data_class with
            | Pd -> "PD"
            | Npd -> "NPD"
            | Io dev -> "IO(" ^ dev ^ ")")
           job.job_id)
  | first :: rest ->
      let best =
        List.fold_left
          (fun best k ->
            if Queue.length k.queue < Queue.length best.queue then k else best)
          first rest
      in
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      Queue.push
        { job; remaining = job.work; deadline; seq; started = false }
        best.queue;
      if deadline <> None then Counter.incr t.counters "rights_jobs";
      let depth =
        List.fold_left (fun acc k -> acc + Queue.length k.queue) 0 t.kernels
      in
      if depth > t.max_queue_depth then t.max_queue_depth <- depth;
      Rgpdos_util.Stats.Counter.incr best.kernel.Subkernel.counters "jobs";
      Ok ()

let idle t = List.for_all (fun k -> Queue.is_empty k.queue) t.kernels

(* The deadline lane's ordering: jobs carrying a deadline come first,
   earliest deadline first; the batch tail (no deadline) and any deadline
   ties fall back to submission order.  Under [Fifo] the queue order IS
   submission order (invariant below), so no sort is needed. *)
let edf_order a b =
  match (a.deadline, b.deadline) with
  | Some da, Some db ->
      if da <> db then compare da db else compare a.seq b.seq
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None -> compare a.seq b.seq

let rec take_n n = function
  | rest when n = 0 -> ([], rest)
  | [] -> ([], [])
  | x :: rest ->
      let picked, left = take_n (n - 1) rest in
      (x :: picked, left)

(* One round: every kernel runs up to [cores] jobs, each for up to one
   quantum, scaled by its CPU share (1000 mcpu = 1x per-core speed).
   [busy] accumulates the SUM of the core walls (aggregate core-time, so
   it is identical to the sequential total at any core count and at any
   policy), while the clock advances by the longest wall any core
   anywhere spent — the per-round critical path.

   Job selection is {i explicit}: jobs carry a submission sequence
   number, [Fifo] serves the [cores] lowest-seq jobs and [Edf] the
   [cores] earliest-deadline jobs (deadline-less batch work last, ties
   by seq).  Unfinished selected jobs return to the head of the queue,
   ahead of the waiting tail — under [Fifo] this preserves strict
   submission-order service across rounds (pinned by a regression test;
   the pre-EDF implementation relied on incidental [Queue.transfer]
   ordering for this), and under [Edf] it is irrelevant because every
   round re-ranks the whole queue. *)
let run_round t quantum =
  let max_wall = ref 0 in
  List.iter
    (fun k ->
      let cores = max 1 k.kernel.Subkernel.cores in
      let mcpu = max 1 (Resource.cpu_millis k.kernel.Subkernel.partition) in
      let all = List.of_seq (Queue.to_seq k.queue) in
      Queue.clear k.queue;
      let ranked =
        match t.policy with
        | Fifo -> all (* queue discipline keeps seq order *)
        | Edf -> List.stable_sort edf_order all
      in
      let selected, _ = take_n cores ranked in
      (* a started batch job pushed out of its slot by a later-submitted
         deadline job is a preemption: the rights lane paused batch work
         at a quantum (= shard) boundary *)
      (match t.policy with
      | Fifo -> ()
      | Edf ->
          let max_deadline_seq =
            List.fold_left
              (fun acc r -> if r.deadline <> None then max acc r.seq else acc)
              min_int selected
          in
          if max_deadline_seq > min_int then
            List.iter
              (fun r ->
                if
                  r.started && r.seq < max_deadline_seq
                  && not (List.memq r selected)
                then Counter.incr t.counters "preemptions")
              all);
      let not_selected = List.filter (fun r -> not (List.memq r selected)) all in
      let survivors = ref [] in
      List.iter
        (fun r ->
          r.started <- true;
          let slice = min r.remaining quantum in
          (* wall time = cpu time / share *)
          let wall = slice * 1000 / mcpu in
          r.remaining <- r.remaining - slice;
          k.busy <- k.busy + wall;
          if wall > !max_wall then max_wall := wall;
          if r.remaining <= 0 then begin
            t.completed_rev <- r.job.job_id :: t.completed_rev;
            (* the job's own core finishes [wall] into this round *)
            let finished_at = Clock.now t.clock + wall in
            t.completions_rev <- (r.job.job_id, finished_at) :: t.completions_rev;
            match r.deadline with
            | Some d when finished_at > d ->
                Counter.incr t.counters "deadline_misses"
            | _ -> ()
          end
          else survivors := r :: !survivors)
        selected;
      (* unfinished selected jobs return to the head (in selection
         order), ahead of the waiting tail, which keeps its own order *)
      List.iter (fun r -> Queue.push r k.queue) (List.rev !survivors);
      List.iter (fun r -> Queue.push r k.queue) not_selected)
    t.kernels;
  Clock.advance t.clock !max_wall

let run_until_idle t ?(quantum = 1_000_000) () =
  while not (idle t) do
    run_round t quantum
  done

let completed t = List.rev t.completed_rev

let completions t = List.rev t.completions_rev

let counters t =
  let canonical =
    List.map
      (fun name ->
        if name = "max_queue_depth" then (name, t.max_queue_depth)
        else (name, Counter.get t.counters name))
      counter_names
  in
  let extra =
    List.filter
      (fun (k, _) -> not (List.mem k counter_names))
      (Counter.to_list t.counters)
  in
  List.sort compare (canonical @ extra)

let kernel_busy_time t =
  t.kernels
  |> List.map (fun k -> (k.kernel.Subkernel.id, k.busy))
  |> List.sort compare
