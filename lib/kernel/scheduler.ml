module Clock = Rgpdos_util.Clock

type data_class = Pd | Npd | Io of string

type job = { job_id : string; data_class : data_class; work : Clock.ns }

type running = { job : job; mutable remaining : Clock.ns }

type kstate = {
  kernel : Subkernel.t;
  queue : running Queue.t;
  mutable busy : Clock.ns;
}

type t = {
  clock : Clock.t;
  kernels : kstate list;
  mutable completed_rev : string list;
}

let create ~clock ~kernels =
  {
    clock;
    kernels =
      List.map (fun k -> { kernel = k; queue = Queue.create (); busy = 0 }) kernels;
    completed_rev = [];
  }

let eligible data_class k =
  match (data_class, k.kernel.Subkernel.kind) with
  | Pd, Subkernel.Rgpd -> true
  | Npd, Subkernel.General_purpose -> true
  | Io dev, Subkernel.Io_driver d -> d = dev
  | (Pd | Npd | Io _), _ -> false

(* place on the eligible kernel with the shortest queue *)
let submit t job =
  let candidates = List.filter (eligible job.data_class) t.kernels in
  match candidates with
  | [] ->
      Error
        (Printf.sprintf "no kernel can run %s job %s"
           (match job.data_class with
            | Pd -> "PD"
            | Npd -> "NPD"
            | Io dev -> "IO(" ^ dev ^ ")")
           job.job_id)
  | first :: rest ->
      let best =
        List.fold_left
          (fun best k ->
            if Queue.length k.queue < Queue.length best.queue then k else best)
          first rest
      in
      Queue.push { job; remaining = job.work } best.queue;
      Rgpdos_util.Stats.Counter.incr best.kernel.Subkernel.counters "jobs";
      Ok ()

let idle t = List.for_all (fun k -> Queue.is_empty k.queue) t.kernels

(* One round: every kernel with work runs its head job for up to one
   quantum, scaled by its CPU share (1000 mcpu = 1x speed).  The clock
   advances by the longest wall-time any kernel spent. *)
let run_round t quantum =
  let max_wall = ref 0 in
  List.iter
    (fun k ->
      match Queue.peek_opt k.queue with
      | None -> ()
      | Some r ->
          let mcpu = max 1 (Resource.cpu_millis k.kernel.Subkernel.partition) in
          let slice = min r.remaining quantum in
          (* wall time = cpu time / share *)
          let wall = slice * 1000 / mcpu in
          r.remaining <- r.remaining - slice;
          k.busy <- k.busy + wall;
          if wall > !max_wall then max_wall := wall;
          if r.remaining <= 0 then begin
            ignore (Queue.pop k.queue);
            t.completed_rev <- r.job.job_id :: t.completed_rev
          end)
    t.kernels;
  Clock.advance t.clock !max_wall

let run_until_idle t ?(quantum = 1_000_000) () =
  while not (idle t) do
    run_round t quantum
  done

let completed t = List.rev t.completed_rev

let kernel_busy_time t =
  t.kernels
  |> List.map (fun k -> (k.kernel.Subkernel.id, k.busy))
  |> List.sort compare
