(** Dynamic CPU/memory partitioning between sub-kernels.

    "The different kernels cooperate to (dynamically) partition CPU and
    memory resources" (§2).  A manager owns the machine's totals; each
    sub-kernel holds a partition that can grow or shrink at run time, with
    the invariant that allocations never exceed the totals. *)

type t
(** The machine-wide resource manager. *)

type partition

val create : cpu_millis:int -> mem_pages:int -> t
(** Totals: CPU capacity in milli-cores (e.g. 8000 = 8 cores) and memory
    in pages. *)

val claim :
  t -> owner:string -> cpu_millis:int -> mem_pages:int ->
  (partition, string) result
(** Carve an initial partition out of the free pool. *)

val resize :
  t -> partition -> cpu_millis:int -> mem_pages:int -> (unit, string) result
(** Dynamic repartition: grow or shrink; growth is bounded by the free
    pool. *)

val release : t -> partition -> unit

val owner : partition -> string
val cpu_millis : partition -> int
val mem_pages : partition -> int

val free_cpu : t -> int
val free_mem : t -> int

val partitions : t -> (string * int * int) list
(** [(owner, cpu, mem)] for every live partition, sorted by owner. *)

val invariant_ok : t -> bool
(** Allocations sum to at most the totals (checked in tests and fsck). *)
