module Clock = Rgpdos_util.Clock

type 'a t = {
  name : string;
  clock : Clock.t;
  capacity : int;
  latency : Clock.ns;
  queue : 'a Queue.t;
  mutable sent : int;
}

let create ~clock ?(capacity = 64) ?(latency = 2_000) ~name () =
  if capacity <= 0 then invalid_arg "Ipc.create: capacity must be positive";
  { name; clock; capacity; latency; queue = Queue.create (); sent = 0 }

let name ch = ch.name

let send ch msg =
  if Queue.length ch.queue >= ch.capacity then
    Error (Printf.sprintf "channel %s full (capacity %d)" ch.name ch.capacity)
  else begin
    Clock.advance ch.clock ch.latency;
    Queue.push msg ch.queue;
    ch.sent <- ch.sent + 1;
    Ok ()
  end

let recv ch =
  match Queue.pop ch.queue with
  | msg ->
      Clock.advance ch.clock ch.latency;
      Some msg
  | exception Queue.Empty -> None

let length ch = Queue.length ch.queue

let total_sent ch = ch.sent
