(** Weighted round-robin scheduler over the sub-kernels, with an
    optional deadline-aware (EDF) rights lane.

    Jobs are tagged PD or NPD and must run on a kernel of the matching
    category — the scheduler {i refuses} to place a PD job on the
    general-purpose kernel, which is the structural half of the paper's
    data/process separation (experiment E9 measures the cost of the
    split).  Each kernel executes work at a rate proportional to its CPU
    partition; the virtual clock advances by the longest-running kernel
    per scheduling round.

    {b Service order.}  Every job carries a global submission sequence
    number.  Under {!Fifo} (the default) same-class jobs are served
    strictly in submission order across rounds: the head job(s) hold
    their core slots until completion, and unfinished jobs resume ahead
    of the waiting tail (pinned by a regression test — the pre-EDF
    implementation relied on incidental [Queue] transfer ordering for
    this).  Under {!Edf}, jobs submitted with a deadline form a
    preemptive lane: each round serves the earliest-deadline jobs first,
    so a rights job submitted while a long batch job is mid-flight
    displaces it at the next quantum boundary (the scheduler-level
    mirror of the DED's shard-boundary yield).  Batch (deadline-less)
    jobs keep submission order among themselves.

    Switching {!Fifo} to {!Edf} changes {i only} ordering and latency:
    the completed-job set and every kernel's aggregate busy time are
    identical (qcheck-pinned), because slices and per-core rates do not
    depend on the policy. *)

type data_class =
  | Pd   (** application processing over personal data — rgpdOS kernel only *)
  | Npd  (** non-personal work — general-purpose kernel only *)
  | Io of string
      (** device work for the named device — the matching IO-driver kernel.
          PD traverses IO-driver kernels (which is why the paper trusts
          them), but application PD jobs never run there. *)

type job = {
  job_id : string;
  data_class : data_class;
  work : Rgpdos_util.Clock.ns;  (** CPU time the job needs at 1 core *)
}

type policy =
  | Fifo  (** strict submission order (the pre-deadline behaviour) *)
  | Edf   (** earliest-deadline-first rights lane over the batch tail *)

type t

val create : clock:Rgpdos_util.Clock.t -> kernels:Subkernel.t list -> t
(** Starts under {!Fifo}. *)

val policy : t -> policy

val set_policy : t -> policy -> unit
(** Switch the service policy.  Takes effect from the next round (every
    round ranks the whole queue afresh), so it is safe on a non-idle
    scheduler; normally set once right after {!create}. *)

val submit : t -> ?deadline:Rgpdos_util.Clock.ns -> job -> (unit, string) result
(** Queues the job on a kernel able to process its data class (the rgpdOS
    kernel for PD, the general-purpose kernel for NPD, the named device's
    IO-driver kernel for IO).  [Error] if no eligible kernel exists.

    [?deadline] is an {i absolute} simulated-clock deadline; it places
    the job in the {!Edf} deadline lane (rights jobs — Art. 15/17/20
    access/erasure/portability, Art. 33 breach enumeration) and counts
    it under the ["rights_jobs"] counter.  Under {!Fifo} the deadline
    still drives the ["deadline_misses"] counter, but never reorders. *)

val run_round : t -> Rgpdos_util.Clock.ns -> unit
(** One scheduling round at the given quantum.  Exposed so open-loop
    drivers can interleave arrivals ({!submit}) with execution; use
    {!run_until_idle} to drain. *)

val run_until_idle : t -> ?quantum:Rgpdos_util.Clock.ns -> unit -> unit
(** Execute all queued work; default quantum 1 ms of single-core time. *)

val idle : t -> bool

val completed : t -> string list
(** Job ids in completion order. *)

val completions : t -> (string * Rgpdos_util.Clock.ns) list
(** [(job_id, finish)] in completion order, where [finish] is the
    simulated clock at which the job's core finished it (per-right
    latency = finish − submit-time, measured by the caller). *)

val counter_names : string list
(** The canonical scheduler counters, always present in {!counters} with
    0 defaults: ["preemptions"] (a started batch job displaced from its
    core slot by a later-submitted deadline job, counted per round),
    ["deadline_misses"] (jobs finishing after their absolute deadline),
    ["rights_jobs"] (jobs submitted with a deadline), and
    ["max_queue_depth"] (high-water total queued jobs across kernels,
    sampled at submit). *)

val counters : t -> (string * int) list
(** Canonical counters (0 defaults) plus any extras, sorted by name. *)

val kernel_busy_time : t -> (string * Rgpdos_util.Clock.ns) list
(** Accumulated busy time per kernel id, sorted by id.  Aggregate
    core-time: independent of core count {i and} of the policy. *)
