(** Weighted round-robin scheduler over the sub-kernels.

    Jobs are tagged PD or NPD and must run on a kernel of the matching
    category — the scheduler {i refuses} to place a PD job on the
    general-purpose kernel, which is the structural half of the paper's
    data/process separation (experiment E9 measures the cost of the
    split).  Each kernel executes work at a rate proportional to its CPU
    partition; the virtual clock advances by the longest-running kernel
    per scheduling round. *)

type data_class =
  | Pd   (** application processing over personal data — rgpdOS kernel only *)
  | Npd  (** non-personal work — general-purpose kernel only *)
  | Io of string
      (** device work for the named device — the matching IO-driver kernel.
          PD traverses IO-driver kernels (which is why the paper trusts
          them), but application PD jobs never run there. *)

type job = {
  job_id : string;
  data_class : data_class;
  work : Rgpdos_util.Clock.ns;  (** CPU time the job needs at 1 core *)
}

type t

val create : clock:Rgpdos_util.Clock.t -> kernels:Subkernel.t list -> t

val submit : t -> job -> (unit, string) result
(** Queues the job on a kernel able to process its data class (the rgpdOS
    kernel for PD, the general-purpose kernel for NPD, the named device's
    IO-driver kernel for IO).  [Error] if no eligible kernel exists. *)

val run_until_idle : t -> ?quantum:Rgpdos_util.Clock.ns -> unit -> unit
(** Execute all queued work; default quantum 1 ms of single-core time. *)

val completed : t -> string list
(** Job ids in completion order. *)

val kernel_busy_time : t -> (string * Rgpdos_util.Clock.ns) list
(** Accumulated busy time per kernel id, sorted by id. *)
