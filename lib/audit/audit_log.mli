(** Tamper-evident processing log.

    §4 (right of access): "the DED logs every executed processing.  This
    log is organized so that it can give information about executed
    processings for each piece of PD."  Entries form a SHA-256 hash chain
    so that any after-the-fact modification is detectable — the property a
    supervisory authority needs to trust the operator's answer to an
    access request.

    The log records {i events about} PD (identifiers, purposes, decisions)
    but never PD field values themselves, so it can live outside DBFS. *)

type event =
  | Collected of { pd_id : string; interface : string }
  | Processed of { purpose : string; inputs : string list; produced : string list }
  | Filtered_out of { purpose : string; pd_id : string; reason : string }
      (** a membrane refused this PD to this processing *)
  | Consent_changed of { pd_id : string; purpose : string; granted : bool }
  | Erased of { pd_id : string; mode : string }  (** "physical" | "crypto" *)
  | Exported of { subject : string; pd_ids : string list }
  | Denied of { actor : string; reason : string }
  | Registered of { processing : string; alert : bool }
  | Attested of { processing : string; measurement : string }
      (** SGX-style measurement of the code the DED executed *)

type entry = {
  seq : int;
  timestamp : Rgpdos_util.Clock.ns;
  actor : string;
  event : event;
  prev_hash : string;  (** hex digest of the previous entry (or genesis) *)
  hash : string;       (** hex digest binding this entry to the chain *)
}

type t

val create : unit -> t

val append :
  t -> now:Rgpdos_util.Clock.ns -> actor:string -> event -> entry

val length : t -> int

val entries : t -> entry list
(** Oldest first. *)

val for_pd : t -> string -> entry list
(** Every entry mentioning the given pd_id — the per-PD processing history
    the right of access requires. *)

val for_subject_pds : t -> string list -> entry list
(** Entries mentioning any of the given pd_ids. *)

val verify : t -> (unit, int) result
(** Recompute the chain; [Error seq] points at the first corrupted entry. *)

val unsafe_tamper : t -> seq:int -> actor:string -> unit
(** Test hook: overwrite an entry's actor in place {i without} re-hashing,
    so that [verify] must catch it. *)

val to_bytes : t -> string
(** Serialize the whole chain (for persistence on the NPD filesystem —
    entries reference pd_ids and purposes but never PD field values). *)

val of_bytes : string -> (t, string) result
(** Decode a persisted chain.  The chain is NOT re-verified here; call
    {!verify} on the result. *)

val pp_event : Format.formatter -> event -> unit
val pp_entry : Format.formatter -> entry -> unit

val export_for_subject : t -> pd_ids:string list -> string
(** Human/machine-readable JSON list of the processing history for a
    subject's PD, included in right-of-access responses. *)
