module Clock = Rgpdos_util.Clock
module Codec = Rgpdos_util.Codec
module Sha256 = Rgpdos_crypto.Sha256
module Hex = Rgpdos_util.Hex

let ( let* ) = Result.bind

type event =
  | Collected of { pd_id : string; interface : string }
  | Processed of { purpose : string; inputs : string list; produced : string list }
  | Filtered_out of { purpose : string; pd_id : string; reason : string }
  | Consent_changed of { pd_id : string; purpose : string; granted : bool }
  | Erased of { pd_id : string; mode : string }
  | Exported of { subject : string; pd_ids : string list }
  | Denied of { actor : string; reason : string }
  | Registered of { processing : string; alert : bool }
  | Attested of { processing : string; measurement : string }

type entry = {
  seq : int;
  timestamp : Clock.ns;
  actor : string;
  event : event;
  prev_hash : string;
  hash : string;
}

type t = {
  mutable entries_rev : entry list;
  mutable count : int;
  (* scratch state reused across appends: the chain hashes one small
     material string per entry, so a fresh hash context and Buffer per
     call would be pure allocation churn on the hot path *)
  scratch_ctx : Sha256.ctx;
  scratch_w : Codec.Writer.t;
}

let genesis_hash = Sha256.hexdigest "rgpdos-audit-genesis"

let create () =
  {
    entries_rev = [];
    count = 0;
    scratch_ctx = Sha256.init ();
    scratch_w = Codec.Writer.create ();
  }

let encode_event w event =
  let open Codec.Writer in
  match event with
  | Collected { pd_id; interface } ->
      string w "collected";
      string w pd_id;
      string w interface
  | Processed { purpose; inputs; produced } ->
      string w "processed";
      string w purpose;
      list w (string w) inputs;
      list w (string w) produced
  | Filtered_out { purpose; pd_id; reason } ->
      string w "filtered_out";
      string w purpose;
      string w pd_id;
      string w reason
  | Consent_changed { pd_id; purpose; granted } ->
      string w "consent_changed";
      string w pd_id;
      string w purpose;
      bool w granted
  | Erased { pd_id; mode } ->
      string w "erased";
      string w pd_id;
      string w mode
  | Exported { subject; pd_ids } ->
      string w "exported";
      string w subject;
      list w (string w) pd_ids
  | Denied { actor; reason } ->
      string w "denied";
      string w actor;
      string w reason
  | Registered { processing; alert } ->
      string w "registered";
      string w processing;
      bool w alert
  | Attested { processing; measurement } ->
      string w "attested";
      string w processing;
      string w measurement

let entry_material w ~seq ~timestamp ~actor ~event ~prev_hash =
  Codec.Writer.clear w;
  Codec.Writer.int w seq;
  Codec.Writer.int w timestamp;
  Codec.Writer.string w actor;
  encode_event w event;
  Codec.Writer.string w prev_hash;
  Codec.Writer.contents w

let compute_hash t ~seq ~timestamp ~actor ~event ~prev_hash =
  let material =
    entry_material t.scratch_w ~seq ~timestamp ~actor ~event ~prev_hash
  in
  Sha256.reset t.scratch_ctx;
  Sha256.feed t.scratch_ctx material;
  Hex.encode (Sha256.finalize t.scratch_ctx)

let append t ~now ~actor event =
  let prev_hash =
    match t.entries_rev with [] -> genesis_hash | e :: _ -> e.hash
  in
  let seq = t.count in
  let hash = compute_hash t ~seq ~timestamp:now ~actor ~event ~prev_hash in
  let entry = { seq; timestamp = now; actor; event; prev_hash; hash } in
  t.entries_rev <- entry :: t.entries_rev;
  t.count <- t.count + 1;
  entry

let length t = t.count

let entries t = List.rev t.entries_rev

let event_pd_ids = function
  | Collected { pd_id; _ } -> [ pd_id ]
  | Processed { inputs; produced; _ } -> inputs @ produced
  | Filtered_out { pd_id; _ } -> [ pd_id ]
  | Consent_changed { pd_id; _ } -> [ pd_id ]
  | Erased { pd_id; _ } -> [ pd_id ]
  | Exported { pd_ids; _ } -> pd_ids
  | Denied _ -> []
  | Registered _ -> []
  | Attested _ -> []

let for_pd t pd_id =
  entries t |> List.filter (fun e -> List.mem pd_id (event_pd_ids e.event))

let for_subject_pds t pd_ids =
  entries t
  |> List.filter (fun e ->
         List.exists (fun id -> List.mem id pd_ids) (event_pd_ids e.event))

let verify t =
  let rec go prev_hash = function
    | [] -> Ok ()
    | e :: rest ->
        let expected =
          compute_hash t ~seq:e.seq ~timestamp:e.timestamp ~actor:e.actor
            ~event:e.event ~prev_hash
        in
        if e.prev_hash <> prev_hash || e.hash <> expected then Error e.seq
        else go e.hash rest
  in
  go genesis_hash (entries t)

let unsafe_tamper t ~seq ~actor =
  t.entries_rev <-
    List.map
      (fun e -> if e.seq = seq then { e with actor } else e)
      t.entries_rev

let decode_event r =
  let open Codec.Reader in
  let* tag = string r in
  match tag with
  | "collected" ->
      let* pd_id = string r in
      let* interface = string r in
      Ok (Collected { pd_id; interface })
  | "processed" ->
      let* purpose = string r in
      let* inputs = list r string in
      let* produced = list r string in
      Ok (Processed { purpose; inputs; produced })
  | "filtered_out" ->
      let* purpose = string r in
      let* pd_id = string r in
      let* reason = string r in
      Ok (Filtered_out { purpose; pd_id; reason })
  | "consent_changed" ->
      let* pd_id = string r in
      let* purpose = string r in
      let* granted = bool r in
      Ok (Consent_changed { pd_id; purpose; granted })
  | "erased" ->
      let* pd_id = string r in
      let* mode = string r in
      Ok (Erased { pd_id; mode })
  | "exported" ->
      let* subject = string r in
      let* pd_ids = list r string in
      Ok (Exported { subject; pd_ids })
  | "denied" ->
      let* actor = string r in
      let* reason = string r in
      Ok (Denied { actor; reason })
  | "registered" ->
      let* processing = string r in
      let* alert = bool r in
      Ok (Registered { processing; alert })
  | "attested" ->
      let* processing = string r in
      let* measurement = string r in
      Ok (Attested { processing; measurement })
  | other -> Error ("unknown audit event " ^ other)

let to_bytes t =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "AUD1";
  Codec.Writer.list w
    (fun e ->
      Codec.Writer.int w e.seq;
      Codec.Writer.int w e.timestamp;
      Codec.Writer.string w e.actor;
      encode_event w e.event;
      Codec.Writer.string w e.prev_hash;
      Codec.Writer.string w e.hash)
    (entries t);
  Codec.Writer.contents w

let of_bytes raw =
  let open Codec.Reader in
  let r = create raw in
  let* magic = string r in
  if magic <> "AUD1" then Error "not an audit chain: bad magic"
  else
    let* entry_list =
      list r (fun r ->
          let* seq = int r in
          let* timestamp = int r in
          let* actor = string r in
          let* event = decode_event r in
          let* prev_hash = string r in
          let* hash = string r in
          Ok { seq; timestamp; actor; event; prev_hash; hash })
    in
    let* () = expect_end r in
    Ok
      {
        entries_rev = List.rev entry_list;
        count = List.length entry_list;
        scratch_ctx = Sha256.init ();
        scratch_w = Codec.Writer.create ();
      }

let pp_event fmt = function
  | Collected { pd_id; interface } ->
      Format.fprintf fmt "collected %s via %s" pd_id interface
  | Processed { purpose; inputs; produced } ->
      Format.fprintf fmt "processed [%s] under %s -> [%s]"
        (String.concat "," inputs) purpose (String.concat "," produced)
  | Filtered_out { purpose; pd_id; reason } ->
      Format.fprintf fmt "filtered %s out of %s: %s" pd_id purpose reason
  | Consent_changed { pd_id; purpose; granted } ->
      Format.fprintf fmt "consent on %s for %s -> %s" pd_id purpose
        (if granted then "granted" else "withdrawn")
  | Erased { pd_id; mode } -> Format.fprintf fmt "erased %s (%s)" pd_id mode
  | Exported { subject; pd_ids } ->
      Format.fprintf fmt "exported %d PD of %s" (List.length pd_ids) subject
  | Denied { actor; reason } -> Format.fprintf fmt "denied %s: %s" actor reason
  | Registered { processing; alert } ->
      Format.fprintf fmt "registered %s%s" processing
        (if alert then " (with alert)" else "")
  | Attested { processing; measurement } ->
      Format.fprintf fmt "attested %s [%s]" processing
        (String.sub measurement 0 (min 12 (String.length measurement)))

let pp_entry fmt e =
  Format.fprintf fmt "#%d t=%a %s: %a [%s]" e.seq Clock.pp_duration e.timestamp
    e.actor pp_event e.event
    (String.sub e.hash 0 8)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let export_for_subject t ~pd_ids =
  let items =
    for_subject_pds t pd_ids
    |> List.map (fun e ->
           Printf.sprintf
             "{\"seq\": %d, \"time_ns\": %d, \"actor\": \"%s\", \"event\": \"%s\"}"
             e.seq e.timestamp (json_escape e.actor)
             (json_escape (Format.asprintf "%a" pp_event e.event)))
  in
  "[" ^ String.concat ", " items ^ "]"
