(* E-commerce scenario: consent lifecycles and storage limitation.

   A shop keeps customer profiles, runs a recommendation engine under an
   "analytics" purpose and a mailing campaign under "marketing".
   Customers grant and withdraw consents over time; profiles carry a 1-year
   TTL, and the nightly storage-limitation sweep crypto-erases what
   expired.  The same machine also handles the shop's *non-personal* data
   (catalog files) on the conventional journaling filesystem — showing the
   two-filesystem split of the paper's design.

   Run with: dune exec examples/ecommerce.exe *)

module Machine = Rgpdos.Machine
module Ded = Rgpdos_ded.Ded
module Processing = Rgpdos_ded.Processing
module Record = Rgpdos_dbfs.Record
module Value = Rgpdos_dbfs.Value
module Membrane = Rgpdos_membrane.Membrane
module Jfs = Rgpdos_journalfs.Journalfs
module Clock = Rgpdos_util.Clock

let declarations =
  {|
type customer {
  fields {
    name: string,
    email: string,
    last_order: string,
    total_spent_cents: int
  };
  view v_reco { last_order, total_spent_cents };
  view v_mail { name, email };
  consent {
    fulfillment: all,
    analytics: v_reco,
    marketing: none
  };
  collection { web_form: checkout.html };
  origin: subject;
  age: 1Y;
  sensitivity: medium;
}

purpose fulfillment {
  description: "deliver orders the customer placed";
  reads: customer;
  legal_basis: contract;
}

purpose analytics {
  description: "recommend products from purchase history";
  reads: customer.v_reco;
  legal_basis: legitimate_interest;
}

purpose marketing {
  description: "send the monthly promotional newsletter";
  reads: customer.v_mail;
  legal_basis: consent;
}
|}

let ok = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1

let signup m ~name ~order ~spent ~marketing_ok =
  ok
    (Machine.collect m ~type_name:"customer"
       ~subject:("cust-" ^ String.lowercase_ascii name)
       ~interface:"web_form:checkout.html"
       ~record:
         [
           ("name", Value.VString name);
           ("email", Value.VString (String.lowercase_ascii name ^ "@mail.test"));
           ("last_order", Value.VString order);
           ("total_spent_cents", Value.VInt spent);
         ]
       ~consents:
         [
           ("fulfillment", Membrane.All);
           ("analytics", Membrane.View "v_reco");
           ( "marketing",
             if marketing_ok then Membrane.View "v_mail" else Membrane.Denied );
         ]
       ())

let count_reader _ctx inputs =
  Ok (Processing.value_output (Value.VInt (List.length inputs)))

let () =
  print_endline "== shop on rgpdOS ==";
  let m = Machine.boot ~seed:77L () in
  ignore (ok (Machine.load_declarations m declarations));

  ignore (signup m ~name:"Mina" ~order:"espresso kit" ~spent:12_900 ~marketing_ok:true);
  ignore (signup m ~name:"Otto" ~order:"kettle" ~spent:4_500 ~marketing_ok:false);
  ignore (signup m ~name:"Prisha" ~order:"grinder" ~spent:8_900 ~marketing_ok:true);
  print_endline "3 customers signed up";

  let register name purpose touches =
    let spec = ok (Machine.make_processing m ~name ~purpose ~touches count_reader) in
    ignore (ok (Machine.register_processing m spec))
  in
  register "recommender" "analytics" [ ("customer", [ "last_order"; "total_spent_cents" ]) ];
  register "newsletter" "marketing" [ ("customer", [ "name"; "email" ]) ];

  let run name =
    let o = ok (Machine.invoke m ~name ~target:(Ded.All_of_type "customer") ()) in
    Printf.printf "%-12s reached %d customers (%d refused)\n" name o.Ded.consumed
      o.Ded.filtered
  in
  run "recommender";
  run "newsletter";

  (* Otto signs up for the newsletter; Mina opts out of everything optional *)
  print_endline "\nconsent changes: Otto opts in to marketing, Mina opts out";
  ignore (ok (Machine.set_consent m ~subject:"cust-otto" ~purpose:"marketing"
                (Membrane.View "v_mail")));
  ignore (ok (Machine.withdraw_consent m ~subject:"cust-mina" ~purpose:"marketing"));
  ignore (ok (Machine.withdraw_consent m ~subject:"cust-mina" ~purpose:"analytics"));
  run "recommender";
  run "newsletter";

  (* non-personal data lives on the second (conventional) filesystem *)
  let fs = Machine.npd_fs m in
  (match Jfs.write_file fs "/catalog.csv" "sku,price\nespresso kit,129.00\n" with
  | Ok () -> print_endline "\ncatalog written to the NPD filesystem (ext4-like)"
  | Error e -> Printf.printf "npd fs error: %s\n" (Jfs.error_to_string e));

  (* a year passes: the storage-limitation sweep erases expired profiles *)
  Clock.advance (Machine.clock m) (Clock.year + Clock.day);
  let report = Machine.sweep_ttl m () in
  Printf.printf
    "\nnightly TTL sweep after 1 year: %d scanned, %d expired, %d crypto-erased\n"
    report.Rgpdos_gdpr.Ttl_sweeper.scanned
    report.Rgpdos_gdpr.Ttl_sweeper.expired
    report.Rgpdos_gdpr.Ttl_sweeper.removed;
  run "newsletter";

  let verdicts =
    Rgpdos_gdpr.Compliance.evaluate
      (Machine.compliance_evidence m ~forensic_probes:[ "Mina"; "Otto"; "Prisha" ] ())
  in
  Printf.printf "\ncompliance: %s\n" (Rgpdos_gdpr.Compliance.summary verdicts);

  (* the audit trail survives all of it *)
  Printf.printf "audit chain: %d entries, verifies: %b\n"
    (Rgpdos_audit.Audit_log.length (Machine.audit m))
    (Rgpdos_audit.Audit_log.verify (Machine.audit m) = Ok ())
