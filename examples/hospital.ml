(* Hospital scenario.

   The paper's introduction cites a real 2020 CNIL case: two doctors fined
   because medical images sat on a server freely reachable from the
   Internet.  This example models a small clinic on rgpdOS: patient
   records are High-sensitivity PD, the care team processes them under a
   "care" purpose (vital interest), a research team only sees an
   anonymised view, and a rogue reporting script that tries to read DBFS
   directly — the digital equivalent of the open server — is stopped by
   the LSM.

   Run with: dune exec examples/hospital.exe *)

module Machine = Rgpdos.Machine
module Ded = Rgpdos_ded.Ded
module Processing = Rgpdos_ded.Processing
module Record = Rgpdos_dbfs.Record
module Value = Rgpdos_dbfs.Value
module Dbfs = Rgpdos_dbfs.Dbfs
module Membrane = Rgpdos_membrane.Membrane
module Lsm = Rgpdos_kernel.Lsm

let declarations =
  {|
type patient {
  fields {
    name: string,
    social_security: string,
    diagnosis: string,
    image_id: string,
    age_years: int
  };
  view v_care { name, diagnosis, image_id, age_years };
  view v_research { diagnosis, age_years };
  consent {
    care: v_care,
    research: none,
    billing: none
  };
  collection { web_form: admission_form.html };
  origin: subject;
  age: 10Y;
  sensitivity: high;
}

type cohort_stat {
  fields { diagnosis: string, patients: int, mean_age: int };
  consent { research: all };
  sensitivity: low;
}

purpose care {
  description: "diagnose and treat the admitted patient";
  reads: patient.v_care;
  legal_basis: vital_interest;
}

purpose research {
  description: "aggregate anonymised cohort statistics";
  reads: patient.v_research;
  produces: cohort_stat;
  legal_basis: consent;
}
|}

let ok = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1

let admit m ~name ~ssn ~diagnosis ~age ~research_ok =
  let consents =
    [
      ("care", Membrane.View "v_care");
      ( "research",
        if research_ok then Membrane.View "v_research" else Membrane.Denied );
      ("billing", Membrane.Denied);
    ]
  in
  ok
    (Machine.collect m ~type_name:"patient"
       ~subject:("patient-" ^ String.lowercase_ascii name)
       ~interface:"web_form:admission_form.html"
       ~record:
         [
           ("name", Value.VString name);
           ("social_security", Value.VString ssn);
           ("diagnosis", Value.VString diagnosis);
           ("image_id", Value.VString ("scan-" ^ name));
           ("age_years", Value.VInt age);
         ]
       ~consents ())

(* care team: reads identified records under the care purpose *)
let treatment_rounds _ctx inputs =
  List.iter
    (fun (i : Processing.pd_input) ->
      (* the view hides social_security even from the care team *)
      assert (Record.get i.record "social_security" = None))
    inputs;
  Ok (Processing.value_output (Value.VInt (List.length inputs)))

(* research team: only the anonymised view, produces cohort statistics *)
let cohort_study _ctx inputs =
  let by_diagnosis = Hashtbl.create 8 in
  List.iter
    (fun (i : Processing.pd_input) ->
      match (Record.get i.record "diagnosis", Record.get i.record "age_years") with
      | Some (Value.VString d), Some (Value.VInt a) ->
          let count, total =
            Option.value ~default:(0, 0) (Hashtbl.find_opt by_diagnosis d)
          in
          Hashtbl.replace by_diagnosis d (count + 1, total + a)
      | _ -> ())
    inputs;
  let produced =
    Hashtbl.fold
      (fun d (count, total) acc ->
        ( "cohort_stat",
          "clinic",
          [
            ("diagnosis", Value.VString d);
            ("patients", Value.VInt count);
            ("mean_age", Value.VInt (total / max 1 count));
          ] )
        :: acc)
      by_diagnosis []
  in
  Ok { Processing.value = Some (Value.VInt (Hashtbl.length by_diagnosis)); produced }

let () =
  print_endline "== clinic on rgpdOS ==";
  let m = Machine.boot ~seed:1913L () in
  ignore (ok (Machine.load_declarations m declarations));

  let _p1 = admit m ~name:"Amira" ~ssn:"2 92 05 75 116 001"
      ~diagnosis:"fracture" ~age:34 ~research_ok:true in
  let _p2 = admit m ~name:"Jules" ~ssn:"1 85 11 69 042 002"
      ~diagnosis:"fracture" ~age:41 ~research_ok:true in
  let _p3 = admit m ~name:"Leina" ~ssn:"2 01 02 13 005 003"
      ~diagnosis:"pneumonia" ~age:25 ~research_ok:false in
  print_endline "admitted 3 patients (High sensitivity, stored separately)";

  let register name purpose touches impl =
    let spec = ok (Machine.make_processing m ~name ~purpose ~touches impl) in
    ignore (ok (Machine.register_processing m spec))
  in
  register "treatment_rounds" "care"
    [ ("patient", [ "name"; "diagnosis"; "image_id"; "age_years" ]) ]
    treatment_rounds;
  register "cohort_study" "research"
    [ ("patient", [ "diagnosis"; "age_years" ]) ]
    cohort_study;

  let rounds =
    ok (Machine.invoke m ~name:"treatment_rounds" ~target:(Ded.All_of_type "patient") ())
  in
  Printf.printf "care rounds saw %d patients (SSN hidden by the v_care view)\n"
    rounds.Ded.consumed;

  let study =
    ok (Machine.invoke m ~name:"cohort_study" ~target:(Ded.All_of_type "patient") ())
  in
  Printf.printf
    "cohort study: %d consenting patients, %d refused, %d cohort_stat produced\n"
    study.Ded.consumed study.Ded.filtered
    (List.length study.Ded.produced_refs);

  (* the open-server scenario: a reporting script tries to read the
     patient store directly, without going through PS/DED *)
  print_endline "\nrogue script attempts a direct DBFS read...";
  (match Dbfs.list_pds (Machine.dbfs m) ~actor:"reporting_script" "patient" with
  | Error (Dbfs.Access_denied msg) -> Printf.printf "LSM: %s\n" msg
  | Error e -> Printf.printf "unexpected error: %s\n" (Dbfs.error_to_string e)
  | Ok _ -> print_endline "BUG: the rogue script read the patient store!");
  Printf.printf "LSM denial log has %d entries\n" (Lsm.denial_count (Machine.lsm m));

  (* a patient leaves and invokes the right to be forgotten; the clinic
     must keep an escrow for the health authority *)
  let erased = ok (Machine.right_to_erasure m ~subject:"patient-leina") in
  Printf.printf "\npatient-leina erased (%d PD); scanning the medium: %d hits\n"
    erased
    (List.length (Rgpdos_block.Block_device.scan (Machine.pd_device m) "Leina"));

  let verdicts =
    Rgpdos_gdpr.Compliance.evaluate
      (Machine.compliance_evidence m
         ~forensic_probes:[ "Leina"; "2 01 02 13 005 003" ] ())
  in
  Printf.printf "compliance: %s\n" (Rgpdos_gdpr.Compliance.summary verdicts)
