(* Quickstart: the paper's Listings 1-3 as a running program.

   Boot an rgpdOS machine, declare the `user` PD type and its purposes in
   the declaration language, collect three users, register the
   `compute_age` processing (Listing 2), invoke it through the Processing
   Store (Listing 3), and exercise two GDPR rights.

   Run with: dune exec examples/quickstart.exe *)

module Machine = Rgpdos.Machine
module Ded = Rgpdos_ded.Ded
module Processing = Rgpdos_ded.Processing
module Record = Rgpdos_dbfs.Record
module Value = Rgpdos_dbfs.Value

let declarations =
  {|
type user {
  fields {
    name: string,
    pwd: string,
    year_of_birthdate: int
  };
  view v_name { name };
  view v_ano { year_of_birthdate };
  consent {
    purpose1: all,
    purpose2: none,
    purpose3: v_ano
  };
  collection { web_form: user_form.html };
  origin: subject;
  age: 1Y;
  sensitivity: high;
}

type age_pd {
  fields { age: int };
  consent { purpose3: all };
}

purpose purpose3 {
  description: "compute the age of the input user";
  reads: user.v_ano;
  produces: age_pd;
  legal_basis: consent;
}
|}

(* Listing 2: struct age_pd compute_age(struct user_pd user) *)
let compute_age _ctx inputs =
  let produced =
    List.filter_map
      (fun (i : Processing.pd_input) ->
        match Record.get i.record "year_of_birthdate" with
        | Some (Value.VInt y) ->
            (* if (user.age) { ... }  -- is the field allowed to be seen? *)
            Some ("age_pd", i.subject, [ ("age", Value.VInt (2026 - y)) ])
        | _ -> None)
      inputs
  in
  Ok { Processing.value = Some (Value.VInt (List.length produced)); produced }

let die msg =
  prerr_endline ("error: " ^ msg);
  exit 1

let ok = function Ok v -> v | Error e -> die e

let () =
  print_endline "== rgpdOS quickstart ==";
  let m = Machine.boot ~seed:2026L () in
  let types, purposes = ok (Machine.load_declarations m declarations) in
  Printf.printf "loaded %d PD types and %d purposes\n" types purposes;

  (* collection: the acquisition built-in wraps each record in a membrane
     built from the schema's default consents *)
  let collect name year =
    ok
      (Machine.collect m ~type_name:"user"
         ~subject:("sub-" ^ String.lowercase_ascii name)
         ~interface:"web_form:user_form.html"
         ~record:
           [
             ("name", Value.VString name);
             ("pwd", Value.VString ("hash:" ^ name));
             ("year_of_birthdate", Value.VInt year);
           ]
         ())
  in
  let pd1 = collect "Chiraz" 1992 in
  let pd2 = collect "Benoit" 1979 in
  let pd3 = collect "Natacha" 1988 in
  Printf.printf "collected %s %s %s\n" pd1 pd2 pd3;

  (* ps_register(compute_age) *)
  let spec =
    ok
      (Machine.make_processing m ~name:"compute_age" ~purpose:"purpose3"
         ~touches:[ ("user", [ "year_of_birthdate" ]) ]
         compute_age)
  in
  (match ok (Machine.register_processing m spec) with
  | Rgpdos_ps.Processing_store.Registered ->
      print_endline "ps_register: compute_age accepted (purpose matches)"
  | Rgpdos_ps.Processing_store.Registered_with_alert reason ->
      Printf.printf "ps_register: alert raised: %s\n" reason);

  (* main(): ref = ps_invoke(compute_age, user) -- Listing 3 *)
  let outcome =
    ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ())
  in
  Printf.printf
    "ps_invoke: processed %d users, %d filtered, produced %d age_pd refs\n"
    outcome.Ded.consumed outcome.Ded.filtered
    (List.length outcome.Ded.produced_refs);
  print_endline "DED stage breakdown (simulated):";
  List.iter
    (fun (stage, ns) -> Printf.printf "  %-28s %8.1f us\n" stage (float_of_int ns /. 1e3))
    outcome.Ded.stage_ns;
  (* the caller only ever sees references, never raw PD *)
  List.iter (fun r -> Printf.printf "  produced ref: %s\n" r) outcome.Ded.produced_refs;

  (* right of access: structured, machine-readable, with history *)
  print_endline "\nright of access for sub-chiraz:";
  print_endline (ok (Machine.right_of_access m ~subject:"sub-chiraz"));

  (* right to be forgotten: crypto-erasure under the authority's key *)
  let n = ok (Machine.right_to_erasure m ~subject:"sub-benoit") in
  Printf.printf "\nright to be forgotten: %d PD of sub-benoit crypto-erased\n" n;
  (match
     Rgpdos_block.Block_device.scan (Machine.pd_device m) "Benoit"
   with
  | [] -> print_endline "forensic scan of the PD device: no trace of the name"
  | hits -> Printf.printf "forensic scan found %d remnants (BUG)\n" (List.length hits));

  (* the compliance checker agrees *)
  let verdicts =
    Rgpdos_gdpr.Compliance.evaluate
      (Machine.compliance_evidence m ~forensic_probes:[ "Benoit" ] ())
  in
  Printf.printf "\ncompliance: %s\n" (Rgpdos_gdpr.Compliance.summary verdicts)
