(* Purpose-kernel model in action.

   The paper's §2 splits the machine kernel into IO-driver kernels, a
   general-purpose kernel (NPD) and the rgpdOS kernel (PD), dynamically
   partitioning CPU between them.  This example submits a mixed job
   stream, shows that PD jobs never land on the general-purpose kernel,
   then repartitions CPU toward the rgpdOS kernel and shows the PD
   backlog draining faster — while the use-after-free demonstration from
   the paper's Fig. 2 leaks on the process-centric baseline.

   Run with: dune exec examples/purpose_kernels.exe *)

module Clock = Rgpdos_util.Clock
module Resource = Rgpdos_kernel.Resource
module Subkernel = Rgpdos_kernel.Subkernel
module Scheduler = Rgpdos_kernel.Scheduler
module Syscall = Rgpdos_kernel.Syscall
module Ipc = Rgpdos_kernel.Ipc
module Process_model = Rgpdos_baseline.Process_model

let run_stream ~rgpd_mcpu ~general_mcpu =
  let clock = Clock.create () in
  let resources = Resource.create ~cpu_millis:8_000 ~mem_pages:65_536 in
  let claim owner cpu =
    Result.get_ok (Resource.claim resources ~owner ~cpu_millis:cpu ~mem_pages:4_096)
  in
  let kernels =
    [
      Subkernel.make ~id:"io-pd" ~kind:(Subkernel.Io_driver "pd-nvme")
        ~partition:(claim "io-pd" 500) ~policy:Syscall.Policy.allow_all ();
      Subkernel.make ~id:"general" ~kind:Subkernel.General_purpose
        ~partition:(claim "general" general_mcpu) ~policy:Syscall.Policy.allow_all ();
      Subkernel.make ~id:"rgpdos" ~kind:Subkernel.Rgpd
        ~partition:(claim "rgpdos" rgpd_mcpu) ~policy:Syscall.Policy.builtin_policy ();
    ]
  in
  let sched = Scheduler.create ~clock ~kernels in
  for i = 0 to 39 do
    let data_class =
      match i mod 4 with
      | 0 | 2 -> Scheduler.Pd
      | 1 -> Scheduler.Npd
      | _ -> Scheduler.Io "pd-nvme"
    in
    ignore
      (Scheduler.submit sched
         {
           Scheduler.job_id = Printf.sprintf "job-%02d" i;
           data_class;
           work = 3_000_000 (* 3 ms of single-core work *);
         })
  done;
  Scheduler.run_until_idle sched ();
  (Clock.now clock, Scheduler.kernel_busy_time sched)

let () =
  print_endline "== purpose kernels ==";
  print_endline "40 jobs (20 PD + 10 NPD + 10 IO), 3ms single-core work each\n";
  List.iter
    (fun (rgpd, general) ->
      let makespan, busy = run_stream ~rgpd_mcpu:rgpd ~general_mcpu:general in
      Printf.printf "partition rgpd=%4dmcpu general=%4dmcpu:\n" rgpd general;
      Printf.printf "  makespan %.2f ms\n" (float_of_int makespan /. 1e6);
      List.iter
        (fun (id, ns) ->
          Printf.printf "  %-8s busy %.2f ms\n" id (float_of_int ns /. 1e6))
        busy)
    [ (1_500, 6_000); (6_000, 1_500) ];

  (* a PD job cannot even be submitted to a machine without a PD kernel *)
  let clock = Clock.create () in
  let resources = Resource.create ~cpu_millis:8_000 ~mem_pages:1_024 in
  let part =
    Result.get_ok
      (Resource.claim resources ~owner:"general" ~cpu_millis:8_000 ~mem_pages:1_024)
  in
  let general_only =
    Scheduler.create ~clock
      ~kernels:
        [
          Subkernel.make ~id:"general" ~kind:Subkernel.General_purpose
            ~partition:part ~policy:Syscall.Policy.allow_all ();
        ]
  in
  (match
     Scheduler.submit general_only
       { Scheduler.job_id = "pd-job"; data_class = Scheduler.Pd; work = 1 }
   with
  | Error msg -> Printf.printf "\nPD job on a PD-less machine: refused (%s)\n" msg
  | Ok () -> print_endline "\nBUG: PD job accepted on the general kernel");

  (* kernels cooperate over IPC channels *)
  let clock = Clock.create () in
  let ch = Ipc.create ~clock ~name:"rgpdos->io-pd" () in
  ignore (Ipc.send ch "read block 42");
  ignore (Ipc.send ch "write block 43");
  Printf.printf "\nIPC channel %s: %d messages queued, %d ns simulated\n"
    (Ipc.name ch) (Ipc.length ch) (Clock.now clock);

  (* and the Fig. 2 counterpoint: one address space, one use-after-free *)
  print_endline "\nprocess-centric baseline (Fig. 2):";
  let heap = Process_model.create ~slots:4 in
  let pd1 = Process_model.alloc heap ~owner:"purpose1" ~data:"pd1 (consented to f1)" in
  Process_model.free heap pd1;
  let _pd2 = Process_model.alloc heap ~owner:"purpose2" ~data:"pd2 (NOT consented to f1)" in
  (match Process_model.read heap pd1 with
  | Some (owner, data) ->
      Printf.printf "  f1's dangling pointer reads %S owned by %s\n" data owner
  | None -> ());
  Printf.printf "  cross-purpose leaks: %d (rgpdOS structurally prevents this)\n"
    (Process_model.cross_owner_reads heap)
