(* The data-subject portal.

   What the newest machinery looks like from the subject's side: filing
   rights requests against the statutory one-month clock (art. 12(3)),
   receiving a verifiable consent receipt (art. 7(1)), asking for
   restriction instead of erasure (art. 18), and surviving an operator
   machine reboot with every stored guarantee intact.

   Run with: dune exec examples/subject_portal.exe *)

module Machine = Rgpdos.Machine
module Requests = Rgpdos.Subject_requests
module Membrane = Rgpdos_membrane.Membrane
module Value = Rgpdos_dbfs.Value
module Clock = Rgpdos_util.Clock
module Ded = Rgpdos_ded.Ded
module Processing = Rgpdos_ded.Processing

let declarations =
  {|
type reader_profile {
  fields { name: string, email: string, favorite_genre: string };
  view v_reco { favorite_genre };
  consent {
    lending: all,
    recommendations: v_reco
  };
  collection { web_form: signup.html };
  age: 5Y;
}

purpose lending {
  description: "manage the reader's book loans";
  reads: reader_profile;
  legal_basis: contract;
}

purpose recommendations {
  description: "suggest books from reading tastes";
  reads: reader_profile.v_reco;
  legal_basis: consent;
}
|}

let ok = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1

let () =
  print_endline "== a library's subject portal ==";
  let m = Machine.boot ~seed:404L () in
  ignore (ok (Machine.load_declarations m declarations));
  ignore
    (ok
       (Machine.collect m ~type_name:"reader_profile" ~subject:"reader-ida"
          ~interface:"web_form:signup.html"
          ~record:
            [
              ("name", Value.VString "Ida");
              ("email", Value.VString "ida@mail.test");
              ("favorite_genre", Value.VString "systems research");
            ]
          ()));
  let spec =
    ok
      (Machine.make_processing m ~name:"recommender" ~purpose:"recommendations"
         ~touches:[ ("reader_profile", [ "favorite_genre" ]) ]
         (fun _ctx inputs ->
           Ok (Processing.value_output (Value.VInt (List.length inputs)))))
  in
  ignore (ok (Machine.register_processing m spec));

  (* a consent decision comes back with a verifiable receipt *)
  let _, receipt =
    ok
      (Machine.set_consent_with_receipt m ~subject:"reader-ida"
         ~purpose:"recommendations" (Membrane.View "v_reco"))
  in
  Printf.printf "consent receipt issued: %s / %s / %s (mac %s...)\n"
    receipt.Machine.receipt_subject receipt.Machine.receipt_purpose
    receipt.Machine.receipt_scope
    (String.sub receipt.Machine.receipt_mac 0 12);
  Printf.printf "operator can demonstrate the consent later: %b\n"
    (Machine.verify_receipt m receipt);

  (* Ida files a restriction request; the desk tracks the deadline *)
  let desk = Requests.create m in
  let req = Requests.file desk ~subject:"reader-ida" Requests.Restriction in
  Printf.printf "\nrestriction request filed; statutory deadline in %s\n"
    (Format.asprintf "%a" Clock.pp_duration
       (req.Requests.deadline - Clock.now (Machine.clock m)));
  (* the operator dawdles for five weeks... *)
  Clock.advance (Machine.clock m) (35 * Clock.day);
  Printf.printf "after 35 days: %d request(s) OVERDUE (art. 12(3) violation)\n"
    (List.length (Requests.overdue desk));
  ignore (Requests.fulfil_all_pending desk);
  let run () =
    (ok (Machine.invoke m ~name:"recommender"
           ~target:(Ded.All_of_type "reader_profile") ())).Ded.consumed
  in
  Printf.printf "recommender after restriction: sees %d profiles\n" (run ());
  ignore (ok (Machine.lift_restriction m ~subject:"reader-ida"));
  Printf.printf "restriction lifted: sees %d profiles again\n" (run ());

  (* the machine power-cycles; storage guarantees survive, code redeploys *)
  ok (Machine.persist_audit m);
  let m2 = ok (Machine.reboot m) in
  Printf.printf "\nmachine rebooted: %d PD entries survive, audit chain %d entries (verifies: %b)\n"
    (Rgpdos_dbfs.Dbfs.pd_count (Machine.dbfs m2))
    (Rgpdos_audit.Audit_log.length (Machine.audit m2))
    (Rgpdos_audit.Audit_log.verify (Machine.audit m2) = Ok ());
  Printf.printf "processings must be redeployed after reboot: %b\n"
    (Result.is_error
       (Machine.invoke m2 ~name:"recommender"
          ~target:(Ded.All_of_type "reader_profile") ()))
