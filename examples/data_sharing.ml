(* Cross-operator data sharing.

   The membrane tracks each PD's *origin* — the subject, the sysadmin, or
   another data operator (§2).  This example runs TWO rgpdOS machines:
   a travel agency (operator A) and an airline (operator B).  A subject
   ports their profile from A to B: A answers a portability request, B
   collects the document through a declared third_party interface, and
   B's membranes record `origin: third_party(travel-agency)`.  Each
   operator pseudonymises its analytics exports under its own key, so the
   published datasets cannot be linked to each other.

   Run with: dune exec examples/data_sharing.exe *)

module Machine = Rgpdos.Machine
module Requests = Rgpdos.Subject_requests
module Membrane = Rgpdos_membrane.Membrane
module Value = Rgpdos_dbfs.Value
module Record = Rgpdos_dbfs.Record
module Dbfs = Rgpdos_dbfs.Dbfs
module Pseudonym = Rgpdos_gdpr.Pseudonym

let traveller_decls ~origin =
  Printf.sprintf
    {|
type traveller {
  fields {
    name: string,
    email: string,
    miles: int
  };
  view v_ops { name, email };
  view v_stats { miles };
  consent {
    booking: all,
    statistics: v_stats
  };
  collection {
    web_form: booking.html,
    third_party: partner_feed
  };
  origin: %s;
  age: 3Y;
  sensitivity: medium;
}

purpose booking {
  description: "operate the customer's bookings";
  reads: traveller;
  legal_basis: contract;
}

purpose statistics {
  description: "aggregate anonymous mileage statistics";
  reads: traveller.v_stats;
  legal_basis: legitimate_interest;
}
|}
    origin

let ok = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1

let () =
  print_endline "== two operators, one subject ==";
  (* operator A: the travel agency, collecting directly from subjects *)
  let agency = Machine.boot ~seed:100L () in
  ignore (ok (Machine.load_declarations agency (traveller_decls ~origin:"subject")));
  let _pd =
    ok
      (Machine.collect agency ~type_name:"traveller" ~subject:"sub-nora"
         ~interface:"web_form:booking.html"
         ~record:
           [
             ("name", Value.VString "Nora Sel");
             ("email", Value.VString "nora@mail.test");
             ("miles", Value.VInt 48_000);
           ]
         ())
  in
  print_endline "agency collected Nora's profile (origin: subject)";

  (* Nora files a portability request with the agency's request desk *)
  let desk = Requests.create agency in
  let req = Requests.file desk ~subject:"sub-nora" Requests.Portability in
  let fulfilled = ok (Requests.fulfil desk req.Requests.request_id) in
  let document = Option.get fulfilled.Requests.response in
  Printf.printf "portability document issued: %d bytes of structured JSON\n"
    (String.length document);

  (* operator B: the airline, receiving through a third-party channel *)
  let airline = Machine.boot ~seed:200L () in
  ignore
    (ok
       (Machine.load_declarations airline
          (traveller_decls ~origin:"third_party(\"travel-agency\")")));
  Machine.register_collector airline ~interface:"third_party" (fun () ->
      (* a real deployment would parse the portability JSON; the simulated
         feed carries the same fields *)
      [
        ( "sub-nora",
          [
            ("name", Value.VString "Nora Sel");
            ("email", Value.VString "nora@mail.test");
            ("miles", Value.VInt 48_000);
          ] );
      ]);
  let n = ok (Machine.collect_via airline ~type_name:"traveller" ~interface:"third_party") in
  Printf.printf "airline imported %d profile(s) via the partner feed\n" n;

  (* the airline's membrane records where the data came from *)
  let pd_b =
    List.hd
      (ok
         (Result.map_error Dbfs.error_to_string
            (Dbfs.pds_of_subject (Machine.dbfs airline) ~actor:"ded" "sub-nora")))
  in
  let membrane =
    ok
      (Result.map_error Dbfs.error_to_string
         (Dbfs.get_membrane (Machine.dbfs airline) ~actor:"ded" pd_b))
  in
  Format.printf "airline membrane origin: %a@." Membrane.pp_origin
    membrane.Membrane.origin;

  (* each operator pseudonymises under its own key: unlinkable datasets *)
  let key_a = Pseudonym.key_of_string "travel-agency-secret" in
  let key_b = Pseudonym.key_of_string "airline-secret" in
  let pa = Pseudonym.pseudonym key_a "nora@mail.test" in
  let pb = Pseudonym.pseudonym key_b "nora@mail.test" in
  Printf.printf "agency analytics id: %s\nairline analytics id: %s\n" pa pb;
  Printf.printf "published datasets linkable: %b\n" (pa = pb);

  (* Nora later erases at the agency; the airline copy is independent *)
  let erased = ok (Machine.right_to_erasure agency ~subject:"sub-nora") in
  Printf.printf
    "\nNora erased at the agency (%d PD); airline still holds %d PD\n" erased
    (List.length
       (ok
          (Result.map_error Dbfs.error_to_string
             (Dbfs.pds_of_subject (Machine.dbfs airline) ~actor:"ded" "sub-nora"))));
  print_endline
    "(the membrane's origin + the audit chain are what lets Nora find the\n\
     \ airline and repeat the request there)"
