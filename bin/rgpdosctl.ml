(* rgpdosctl: command-line front end to the rgpdOS simulation.

   Subcommands:
     parse FILE        check a declaration file and print what it defines
     demo              run an end-to-end scenario on a fresh machine
     fsck              populate a DBFS or journalfs, optionally damage it,
                       check/repair (both print the journal replay summary)
     stats             run a scripted workload, print cache/index/device counters
     fig1              print the paper's Figure 1 statistics
     experiment ID     run one experiment (e1..e10) at bench scale
     model-check       run the executable-GDPR-model refinement campaign
     articles          print the GDPR article -> rgpdOS mechanism table *)

open Cmdliner

module Machine = Rgpdos.Machine
module Parser = Rgpdos_lang.Parser
module Ast = Rgpdos_lang.Ast
module Schema = Rgpdos_dbfs.Schema
module Value = Rgpdos_dbfs.Value
module Ded = Rgpdos_ded.Ded
module Processing = Rgpdos_ded.Processing
module Articles = Rgpdos_gdpr.Articles
module E = Rgpdos_workload.Experiments
module Table = Rgpdos_util.Table

(* ------------------------------------------------------------------ *)
(* parse                                                              *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_cmd_run path =
  match Parser.parse (read_file path) with
  | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      1
  | Ok decls ->
      List.iter
        (function
          | Ast.Type_decl d -> (
              match Ast.to_schema d with
              | Ok schema ->
                  Format.printf "%a@.@." Schema.pp schema
              | Error e ->
                  Format.printf "type %s: INVALID (%s)@.@." d.Ast.t_name e)
          | Ast.Purpose_decl p -> Format.printf "%a@.@." Ast.pp_purpose_decl p)
        decls;
      Printf.printf "%d declaration(s) parsed from %s\n" (List.length decls) path;
      0

let parse_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Declaration file (Listing-1 syntax).")
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Check a PD-type/purpose declaration file")
    Term.(const parse_cmd_run $ path)

(* ------------------------------------------------------------------ *)
(* demo                                                               *)

let demo_run subjects seed where =
  let prng = Rgpdos_util.Prng.create ~seed:(Int64.of_int seed) () in
  let people = Rgpdos_workload.Population.generate prng ~n:subjects in
  let m = Machine.boot ~seed:(Int64.of_int seed) () in
  (match Machine.load_declarations m Rgpdos_workload.Population.type_declaration with
  | Ok _ -> ()
  | Error e ->
      Printf.eprintf "declarations: %s\n" e;
      exit 1);
  List.iter
    (fun (p : Rgpdos_workload.Population.person) ->
      ignore
        (Machine.collect m ~type_name:"person" ~subject:p.Rgpdos_workload.Population.subject_id
           ~interface:"web_form"
           ~record:(Rgpdos_workload.Population.record_of p)
           ~consents:p.Rgpdos_workload.Population.consent_profile ()))
    people;
  Printf.printf "collected %d subjects\n" subjects;
  let spec =
    match
      Machine.make_processing m ~name:"stats" ~purpose:"analytics"
        ~touches:[ ("person", [ "year_of_birth" ]) ]
        (fun _ctx inputs ->
          Ok (Processing.value_output (Value.VInt (List.length inputs))))
    with
    | Ok s -> s
    | Error e ->
        Printf.eprintf "%s\n" e;
        exit 1
  in
  ignore (Machine.register_processing m spec);
  let target =
    match where with
    | None -> Ded.All_of_type "person"
    | Some src -> (
        match Parser.parse_predicate src with
        | Ok pred ->
            Printf.printf "selection: %s\n" (Rgpdos_dbfs.Query.to_string pred);
            Ded.Selection ("person", pred)
        | Error e ->
            Printf.eprintf "bad --where predicate: %s\n" e;
            exit 1)
  in
  (match Machine.invoke m ~name:"stats" ~target () with
  | Ok o ->
      Printf.printf "analytics processing: %d consented+selected, %d refused\n"
        o.Ded.consumed o.Ded.filtered
  | Error e -> Printf.printf "invoke failed: %s\n" e);
  let victim = (List.hd people).Rgpdos_workload.Population.subject_id in
  (match Machine.right_to_erasure m ~subject:victim with
  | Ok n -> Printf.printf "right to be forgotten for %s: %d PD erased\n" victim n
  | Error e -> Printf.printf "erasure failed: %s\n" e);
  let verdicts =
    Rgpdos_gdpr.Compliance.evaluate (Machine.compliance_evidence m ())
  in
  Printf.printf "compliance: %s\n" (Rgpdos_gdpr.Compliance.summary verdicts);
  if subjects <= 10 then (
    match Rgpdos_dbfs.Dbfs.describe_trees (Machine.dbfs m) ~actor:"ded" with
    | Ok trees ->
        print_newline ();
        print_string trees
    | Error _ -> ());
  0

let demo_cmd =
  let subjects =
    Arg.(value & opt int 100 & info [ "subjects"; "n" ] ~doc:"Population size.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let where =
    Arg.(value & opt (some string) None
         & info [ "where" ] ~docv:"PRED"
             ~doc:"Selection predicate, e.g. \"year_of_birth > 1990\".")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run an end-to-end scenario on a fresh machine")
    Term.(const demo_run $ subjects $ seed $ where)

(* ------------------------------------------------------------------ *)
(* fsck                                                               *)

module Dbfs = Rgpdos_dbfs.Dbfs
module Block_device = Rgpdos_block.Block_device
module Journal_ring = Rgpdos_block.Journal_ring
module Journalfs = Rgpdos_journalfs.Journalfs
module Population = Rgpdos_workload.Population

let print_replay_summary = function
  | Some s ->
      Printf.printf "journal replay: %d record(s), stop=%s\n"
        s.Journal_ring.records_replayed
        (Journal_ring.stop_reason_to_string s.Journal_ring.stop_reason)
  | None -> ()

let fsck_boot subjects seed =
  let prng = Rgpdos_util.Prng.create ~seed:(Int64.of_int seed) () in
  let people = Population.generate prng ~n:subjects in
  let m = Machine.boot ~seed:(Int64.of_int seed) () in
  (match Machine.load_declarations m Population.type_declaration with
  | Ok _ -> ()
  | Error e ->
      Printf.eprintf "declarations: %s\n" e;
      exit 2);
  List.iter
    (fun (p : Population.person) ->
      match
        Machine.collect m ~type_name:"person" ~subject:p.Population.subject_id
          ~interface:"web_form" ~record:(Population.record_of p)
          ~consents:p.Population.consent_profile ()
      with
      | Ok _ -> ()
      | Error e ->
          Printf.eprintf "collect: %s\n" e;
          exit 2)
    people;
  (m, people)

(* Build the store the check runs against, per the requested damage mode:
   a cold remount (caches dropped, so extent checksums are re-verified)
   with optionally one bit of a record extent flipped, the secondary
   index tampered, or the device image captured mid-erasure as a crash
   would leave it. *)
let fsck_store damage subjects seed =
  let m, people = fsck_boot subjects seed in
  let store = Machine.dbfs m in
  let first_pd () =
    match
      Dbfs.pds_of_subject store ~actor:"ded"
        (List.hd people).Population.subject_id
    with
    | Ok (pd :: _) -> pd
    | _ ->
        Printf.eprintf "no pd to damage\n";
        exit 2
  in
  let remount () =
    match Dbfs.crash_and_remount store with
    | Ok s -> s
    | Error e ->
        Printf.eprintf "remount: %s\n" e;
        exit 2
  in
  match damage with
  | "none" -> remount ()
  | "bit-rot" ->
      let pd = first_pd () in
      let rec_blocks =
        match Dbfs.entry_blocks store ~actor:"ded" pd with
        | Ok (rb, _) -> rb
        | Error e ->
            Printf.eprintf "entry_blocks: %s\n" (Dbfs.error_to_string e);
            exit 2
      in
      let cold = remount () in
      Block_device.unsafe_flip (Dbfs.device cold)
        ~block:(List.hd rec_blocks) ~byte:10 ~bit:3;
      cold
  | "index" ->
      if not (Dbfs.unsafe_tamper_index store (first_pd ())) then begin
        Printf.eprintf "pd has no indexed field to tamper\n";
        exit 2
      end;
      store
  | "index-page" ->
      (* the paged index trees exist on the device only after a
         checkpoint; enumerate a node page while the store is warm, then
         remount cold (empty page cache) and flip one bit inside the
         page's framed payload so the next read must fail its checksum *)
      Dbfs.checkpoint store;
      (match Dbfs.index_page_blocks store with
      | [] ->
          Printf.eprintf "no index node pages after checkpoint\n";
          exit 2
      | (block, _) :: _ ->
          let cold = remount () in
          Block_device.unsafe_flip (Dbfs.device cold) ~block ~byte:8 ~bit:3;
          cold)
  | "crash" ->
      let dev = Machine.pd_device m in
      let plan = Block_device.Fault_plan.create () in
      Block_device.Fault_plan.crash_after_writes plan 1;
      Block_device.set_fault_plan dev (Some plan);
      ignore
        (Machine.right_to_erasure m
           ~subject:(List.hd people).Population.subject_id);
      Block_device.set_fault_plan dev None;
      let image =
        match Block_device.crash_image dev with
        | Some i -> i
        | None ->
            Printf.eprintf "crash point never fired\n";
            exit 2
      in
      let clock = Rgpdos_util.Clock.create () in
      let rdev =
        Block_device.create ~config:(Block_device.config dev) ~clock ()
      in
      Block_device.restore rdev image;
      (match Dbfs.mount rdev with
      | Ok s -> s
      | Error e ->
          Printf.eprintf "mount: %s\n" e;
          exit 2)
  | other ->
      Printf.eprintf
        "unknown --damage %s (expected none, bit-rot, index, index-page, \
         crash)\n"
        other;
      exit 2

let fsck_dbfs repair subjects seed damage =
  let store = fsck_store damage subjects seed in
  print_replay_summary (Dbfs.replay_report store);
  if not repair then
    match Dbfs.fsck store with
    | Ok () ->
        Printf.printf "fsck: clean (%d pd)\n" (Dbfs.pd_count store);
        0
    | Error problems ->
        Printf.printf "fsck: %d problem(s) found:\n" (List.length problems);
        List.iter (fun p -> Printf.printf "  %s\n" p) problems;
        Printf.printf "run with --repair to self-heal\n";
        1
  else begin
    let rep = Dbfs.fsck_repair store in
    Printf.printf "fsck --repair:\n";
    Printf.printf "  problems found:    %d\n" (List.length rep.Dbfs.rr_problems);
    List.iter (fun p -> Printf.printf "    %s\n" p) rep.Dbfs.rr_problems;
    Printf.printf "  repair actions:    %d\n" (List.length rep.Dbfs.rr_actions);
    List.iter (fun a -> Printf.printf "    %s\n" a) rep.Dbfs.rr_actions;
    Printf.printf "  quarantined pds:   %d\n"
      (List.length rep.Dbfs.rr_quarantined);
    List.iter
      (fun (pd, reason) -> Printf.printf "    %s: %s\n" pd reason)
      rep.Dbfs.rr_quarantined;
    Printf.printf "  scrubbed blocks:   %d\n" rep.Dbfs.rr_scrubbed_blocks;
    (match rep.Dbfs.rr_journal_truncated with
    | Some reason -> Printf.printf "  journal truncated: %s\n" reason
    | None -> ());
    if rep.Dbfs.rr_clean then begin
      Printf.printf "store is clean (%d pd live)\n" (Dbfs.pd_count store);
      0
    end
    else begin
      Printf.printf "UNRECOVERABLE: post-repair check still failing\n";
      1
    end
  end

(* The journalfs (non-PD files) variant: populate a fresh journalfs
   without checkpointing — every op sits in the journal ring — then
   remount per the requested damage mode and print the same
   Journal_ring.replay summary the DBFS path prints, followed by the
   fsck verdict.  Only damage modes that make sense for a plain
   journaling filesystem are accepted. *)
let fsck_journalfs repair subjects seed damage =
  let prng = Rgpdos_util.Prng.create ~seed:(Int64.of_int seed) () in
  let people = Population.generate prng ~n:subjects in
  let clock = Rgpdos_util.Clock.create () in
  let dev = Block_device.create ~config:Block_device.default_config ~clock () in
  let fs = Journalfs.format dev ~journal_blocks:64 in
  let ok_or_die what = function
    | Ok v -> v
    | Error e ->
        Printf.eprintf "%s: %s\n" what (Journalfs.error_to_string e);
        exit 2
  in
  ok_or_die "mkdir" (Journalfs.mkdir fs "/subjects");
  let populate () =
    List.iter
      (fun (p : Population.person) ->
        let path = "/subjects/" ^ p.Population.subject_id in
        ok_or_die "write_file"
          (Journalfs.write_file fs path
             (Rgpdos_dbfs.Record.encode (Population.record_of p))))
      people
  in
  let remount () =
    match Journalfs.crash_and_remount fs with
    | Ok fs' -> fs'
    | Error e ->
        Printf.eprintf "remount: %s\n" e;
        exit 2
  in
  let fs =
    match damage with
    | "none" ->
        populate ();
        remount ()
    | "bit-rot" ->
        (* flip a bit inside an early journal frame (the ring starts at
           block 1; the first frames sit at the start of it): replay
           must stop there with Bad_checksum instead of trusting the
           damaged tail, recovering only the prefix before the flip *)
        populate ();
        Block_device.unsafe_flip dev ~block:1 ~byte:120 ~bit:2;
        remount ()
    | "crash" ->
        (* power loss mid-populate: cut the device off after a handful
           of writes and mount whatever image a real crash would leave *)
        let plan = Block_device.Fault_plan.create () in
        Block_device.Fault_plan.crash_after_writes plan (3 + (seed mod 5));
        Block_device.set_fault_plan dev (Some plan);
        populate ();
        Block_device.set_fault_plan dev None;
        let image =
          match Block_device.crash_image dev with
          | Some i -> i
          | None ->
              Printf.eprintf "crash point never fired\n";
              exit 2
        in
        let rdev =
          Block_device.create ~config:(Block_device.config dev) ~clock ()
        in
        Block_device.restore rdev image;
        (match Journalfs.mount rdev with
        | Ok fs' -> fs'
        | Error e ->
            Printf.eprintf "mount: %s\n" e;
            exit 2)
    | other ->
        Printf.eprintf
          "unknown --damage %s for --fs journalfs (expected none, bit-rot, \
           crash)\n"
          other;
        exit 2
  in
  print_replay_summary (Journalfs.replay_report fs);
  (match Journalfs.replay_warning fs with
  | Some w -> Printf.printf "journal warning: %s\n" w
  | None -> ());
  if repair then begin
    (* journalfs self-heals at replay time by truncating the damaged
       tail; --repair additionally checkpoints the replayed state and
       scrubs the stale journal so the next mount starts clean *)
    Journalfs.checkpoint fs;
    Journalfs.scrub_journal fs;
    Printf.printf "repair: checkpointed replayed state, journal scrubbed\n"
  end;
  match Journalfs.fsck fs with
  | Ok () ->
      let files =
        match Journalfs.list_dir fs "/subjects" with
        | Ok names -> List.length names
        | Error _ -> 0
      in
      Printf.printf "fsck: clean (%d file(s) under /subjects)\n" files;
      0
  | Error problems ->
      Printf.printf "fsck: %d problem(s) found:\n" (List.length problems);
      List.iter (fun p -> Printf.printf "  %s\n" p) problems;
      1

let fsck_run repair subjects seed damage fstype =
  match fstype with
  | "dbfs" -> fsck_dbfs repair subjects seed damage
  | "journalfs" -> fsck_journalfs repair subjects seed damage
  | other ->
      Printf.eprintf "unknown --fs %s (expected dbfs, journalfs)\n" other;
      2

let fsck_cmd =
  let repair =
    Arg.(value & flag
         & info [ "repair" ]
             ~doc:"Self-heal: quarantine unrecoverable pds, rebuild the \
                   secondary indexes, scrub free blocks, truncate a damaged \
                   journal.")
  in
  let subjects =
    Arg.(value & opt int 20 & info [ "subjects"; "n" ] ~doc:"Population size.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let damage =
    Arg.(value & opt string "none"
         & info [ "damage" ] ~docv:"KIND"
             ~doc:"Damage to inject before checking: none, bit-rot (flip a \
                   bit in a record extent, or in a journal frame for \
                   journalfs), index (drop a posting), index-page (flip a \
                   bit in an on-device index node page after a cold \
                   remount), crash (power loss mid-erasure, or \
                   mid-populate for journalfs).")
  in
  let fstype =
    Arg.(value & opt string "dbfs"
         & info [ "fs" ] ~docv:"FS"
             ~doc:"Filesystem to check: dbfs (the PD store) or journalfs \
                   (the journaling filesystem for non-PD files).  Both \
                   print the journal replay summary on mount.")
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Check (or self-heal with --repair) a populated DBFS or \
             journalfs; exits non-zero on unrecoverable damage")
    Term.(const fsck_run $ repair $ subjects $ seed $ damage $ fstype)

(* ------------------------------------------------------------------ *)
(* stats                                                              *)

(* Populate, checkpoint, remount cold (paged trees on device, caches
   empty), then run a Zipf-skewed read workload under the requested
   cache budget and print the observability counters: cache
   hits/misses/evictions, index node-page reads, and the device's own
   read/write/seek statistics. *)
let stats_run subjects seed budget ops =
  let m, people = fsck_boot subjects seed in
  let store0 = Machine.dbfs m in
  Dbfs.checkpoint store0;
  match Dbfs.crash_and_remount store0 with
  | Error e ->
      Printf.eprintf "remount: %s\n" e;
      2
  | Ok store ->
      Dbfs.set_cache_budget store budget;
      let dev = Dbfs.device store in
      Block_device.reset_stats dev;
      Rgpdos_util.Stats.Counter.reset (Dbfs.stats store);
      let pop = Array.of_list people in
      let zipf =
        Rgpdos_util.Prng.Zipf.create ~n:(Array.length pop) ~theta:0.99
      in
      let prng = Rgpdos_util.Prng.create ~seed:(Int64.of_int (seed + 1)) () in
      let failed = ref 0 in
      let note = function Ok _ -> () | Error _ -> incr failed in
      for _ = 1 to ops do
        let p = pop.(Rgpdos_util.Prng.Zipf.sample zipf prng) in
        match Rgpdos_util.Prng.int prng 3 with
        | 0 ->
            note (Dbfs.export_subject store ~actor:"ded" p.Population.subject_id)
        | 1 ->
            note
              (Dbfs.select store ~actor:"ded" "person"
                 (Rgpdos_dbfs.Query.Eq
                    ("email", Value.VString p.Population.email)))
        | _ ->
            note (Dbfs.pds_of_subject store ~actor:"ded" p.Population.subject_id)
      done;
      (* snapshot the counters before anything else reads pages —
         enumerating the node pages below walks the trees *)
      (* every observability counter the store can emit is listed by
         name, so a counter that stayed at zero still prints: absence
         would be indistinguishable from "this build doesn't have it" *)
      let dbfs_counter_names =
        [
          "page_hits"; "page_misses"; "cache_evictions"; "index_page_reads";
          "fault_retries"; "committed_batches"; "batched_ops"; "compactions";
          "compact_relocations"; "compact_verify_failures";
          "segments_reclaimed"; "segment_trims"; "purge_zeroed_blocks";
          "backpressure_stalls"; "backpressure_stall_ns";
        ]
      in
      let dev_counter_names =
        [
          "reads"; "writes"; "bytes_read"; "bytes_written"; "trims";
          "vec_reads"; "vec_writes"; "write_ops"; "merged_runs";
          "async_submits"; "async_completions"; "async_service_ns";
          "queue_depth_highwater"; "overlap_ns_hidden";
        ]
      in
      let with_defaults names present =
        let extra =
          List.filter (fun (k, _) -> not (List.mem k names)) present
        in
        List.map
          (fun k ->
            (k, match List.assoc_opt k present with Some v -> v | None -> 0))
          names
        @ extra
        |> List.sort compare
      in
      let dbfs_counters =
        with_defaults dbfs_counter_names
          (Rgpdos_util.Stats.Counter.to_list (Dbfs.stats store))
      in
      let dev_counters =
        with_defaults dev_counter_names
          (Rgpdos_util.Stats.Counter.to_list (Block_device.stats dev))
      in
      (* scheduler counters come pre-defaulted from the kernel: the
         deadline lane prints zeros on a machine that never scheduled
         rights work, same canonical-name rule as the store counters *)
      let sched_counters =
        Rgpdos_kernel.Scheduler.counters (Machine.scheduler m)
      in
      let resident = Dbfs.cache_resident store in
      let get k =
        match List.assoc_opt k dbfs_counters with Some v -> v | None -> 0
      in
      let hits = get "page_hits" and misses = get "page_misses" in
      Printf.printf
        "workload: %d ops over %d subjects (Zipf theta=0.99), %d failed\n"
        ops subjects !failed;
      Printf.printf "cache: budget %d entries, resident %d\n"
        (Dbfs.cache_budget store) resident;
      Printf.printf "  page hits        %8d\n" hits;
      Printf.printf "  page misses      %8d\n" misses;
      Printf.printf "  hit rate         %8.1f%%\n"
        (if hits + misses = 0 then 0.0
         else 100.0 *. float_of_int hits /. float_of_int (hits + misses));
      Printf.printf "  evictions        %8d\n" (get "cache_evictions");
      Printf.printf "index: node-page reads %d (%d node pages on device)\n"
        (get "index_page_reads")
        (List.length (Dbfs.index_page_blocks store));
      Printf.printf "dbfs counters:\n";
      List.iter (fun (k, v) -> Printf.printf "  %-22s %10d\n" k v) dbfs_counters;
      Printf.printf "device counters:\n";
      List.iter (fun (k, v) -> Printf.printf "  %-22s %10d\n" k v) dev_counters;
      Printf.printf "scheduler counters:\n";
      List.iter (fun (k, v) -> Printf.printf "  %-22s %10d\n" k v) sched_counters;
      0

let stats_cmd =
  let subjects =
    Arg.(value & opt int 500 & info [ "subjects"; "n" ] ~doc:"Population size.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let budget =
    Arg.(value & opt int 256
         & info [ "budget" ] ~doc:"Cache budget in resident entries.")
  in
  let ops =
    Arg.(value & opt int 2_000 & info [ "ops" ] ~doc:"Workload operations.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a Zipf-skewed workload against a cold-remounted store and \
             print the cache, index and device counters")
    Term.(const stats_run $ subjects $ seed $ budget $ ops)

(* ------------------------------------------------------------------ *)
(* fig1 / experiments / articles                                      *)

let fig1_cmd =
  Cmd.v
    (Cmd.info "fig1" ~doc:"Print the paper's Figure 1 statistics")
    Term.(
      const (fun () ->
          print_endline (Rgpdos_penalties.Penalties.render_figure1 ());
          0)
      $ const ())

let experiment_run id quick =
  let d full small = if quick then small else full in
  let out =
    match String.lowercase_ascii id with
    | "e1" -> Some (E.render_e1 (E.e1_ded_stages ~subjects:(d 2_000 200) ()))
    | "e2" ->
        Some
          (E.render_e2
             (E.e2_gdprbench ~subjects:(d 400 80) ~ops_per_role:(d 200 50) ()))
    | "e2b" ->
        Some
          (E.render_e2b
             (E.e2b_scaling ~sizes:(d [ 100; 200; 400 ] [ 50; 100 ]) ()))
    | "e3" ->
        Some (E.render_e3 (E.e3_erasure ~subjects:(d 300 60) ()))
    | "e4" -> Some (E.render_e4 (E.e4_access ()))
    | "e5" -> Some (E.render_e5 (E.e5_ttl ~sizes:(d [ 500; 1_000; 2_000 ] [ 100 ]) ()))
    | "e6" -> Some (E.render_e6 (E.e6_filter ~subjects:(d 1_000 150) ()))
    | "e7" -> Some (E.render_e7 (E.e7_leak ~attacks:(d 200 40) ()))
    | "e8" -> Some (E.render_e8 (E.e8_register ()))
    | "e9" -> Some (E.render_e9 (E.e9_kernels ~jobs:(d 100 24) ()))
    | "e11" ->
        Some (E.render_e11 (E.e11_consent_churn ~subjects:(d 300 60) ()))
    | "a1" -> Some (E.render_a1 (E.a1_fetch_mode ~subjects:(d 500 80) ()))
    | "a2" -> Some (E.render_a2 (E.a2_placement ~subjects:(d 1_000 150) ()))
    | "e10" ->
        Some
          (E.render_e10
             (E.e10_audit ~sizes:(d [ 100; 1_000; 10_000 ] [ 100; 1_000 ]) ()))
    | _ -> None
  in
  match out with
  | Some s ->
      print_endline s;
      0
  | None ->
      Printf.eprintf "unknown experiment %s (expected e1..e11, e2b, a1, a2)\n" id;
      1

let experiment_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID"
           ~doc:"Experiment id, e1 through e10.")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sizes.") in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run one experiment and print its table")
    Term.(const experiment_run $ id $ quick)

(* ------------------------------------------------------------------ *)
(* model-check                                                        *)

let model_check_run seed scripts =
  let module Refine = Rgpdos_model.Refine in
  let report = Refine.run ~seed ?scripts () in
  print_string (Refine.render report);
  if Refine.all_pass report then 0 else 1

let model_check_cmd =
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Campaign seed.") in
  let scripts =
    Arg.(value & opt (some int) None
         & info [ "scripts" ] ~docv:"N"
             ~doc:"Generated scripts per mode (default: the QCHECK_COUNT \
                   environment variable, else 4).")
  in
  Cmd.v
    (Cmd.info "model-check"
       ~doc:"Run the executable-GDPR-model refinement campaign (lockstep \
             observational equivalence, crash refinement across the \
             allocator/group-commit/async config matrix, linearizability \
             at 1/2/4 domains, index/cache coherence); exits non-zero on \
             any counterexample")
    Term.(const model_check_run $ seed $ scripts)

let articles_cmd =
  Cmd.v
    (Cmd.info "articles" ~doc:"GDPR article to rgpdOS mechanism mapping")
    Term.(
      const (fun () ->
          Table.print
            ~header:[ "article"; "right/principle"; "rgpdOS mechanism" ]
            (List.map
               (fun a ->
                 [ Articles.to_string a; Articles.description a; Articles.mechanism a ])
               Articles.all);
          0)
      $ const ())

let () =
  let info =
    Cmd.info "rgpdosctl" ~version:"1.0.0"
      ~doc:"Drive the rgpdOS GDPR-aware operating system simulation"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            parse_cmd; demo_cmd; fsck_cmd; stats_cmd; fig1_cmd; experiment_cmd;
            model_check_cmd; articles_cmd;
          ]))
