(* The full evaluation harness.

   Usage: dune exec bench/main.exe [-- --quick] [-- --json PATH]
                                   [-- fig1 e1 e3 micro ...]

   With no section arguments it regenerates everything: Figure 1 (the
   paper's penalty statistics), experiments E1-E10 with the E2b scaling
   sweep and the A1/A2/A3 ablations (DESIGN.md §3), and the bechamel
   micro-benchmarks of the core primitives.  [--quick] shrinks problem
   sizes for a fast smoke pass.

   [--json PATH] additionally writes a machine-readable report (see
   Rgpdos_workload.Bench_report) holding the micro ns/op rows and the
   E1/E4 aggregates from whichever of those sections ran — the committed
   BENCH_hotpath.json artifact is produced by

     dune exec bench/main.exe -- --quick micro e1 e4 --json BENCH_hotpath.json

   The [vecio] section runs E1 twice — scalar device cost model vs
   vectored run-merging — and [--vec-json PATH] writes the before/after
   artifact; the committed BENCH_vectored_io.json is produced by

     dune exec bench/main.exe -- vecio --vec-json BENCH_vectored_io.json

   The [scale] section runs the sharded GDPRBench driver over 1/2/4/8
   domains (processor-role mix) plus the E1 ded_execute sequential vs
   parallel pair; [--scale-json PATH] writes the speedup artifact; the
   committed BENCH_parallel_scale.json is produced by

     dune exec bench/main.exe -- scale --scale-json BENCH_parallel_scale.json

   The [index] section sweeps Dbfs.select selectivity (0.1%/1%/10%/100%)
   and population size, full scan vs index pushdown, plus the
   full-vs-incremental TTL sweep pair; [--index-json PATH] writes the
   artifact; the committed BENCH_index_select.json is produced by

     dune exec bench/main.exe -- index --index-json BENCH_index_select.json

   The [mount] section measures clean-mount device reads and resident
   cache entries against population (10^3 → 10^6 at full scale) plus the
   Zipf-skewed Art.15/17 + DED-select workload under a fixed cache-entry
   budget; [--mount-json PATH] writes the artifact; the committed
   BENCH_mount_scale.json is produced by

     dune exec bench/main.exe -- mount --mount-json BENCH_mount_scale.json

   The [fault] section runs the deterministic fault-injection campaign
   (crash after every device write of the scripted GDPR workload, plus
   the named bit-rot / transient / torn-write / degraded-mode
   scenarios); [--fault-json PATH] writes the verdict artifact; the
   committed BENCH_fault_campaign.json is produced by

     dune exec bench/main.exe -- fault --fault-json BENCH_fault_campaign.json

   The [model] section runs the executable-GDPR-model refinement
   campaign (lockstep observational equivalence, crash-refinement
   across both allocators x group-commit windows x async depths,
   linearizability at 1/2/4 domains, index/cache coherence at budgets
   1/7/65536); [--model-json PATH] writes the artifact; the committed
   BENCH_model_check.json is produced by

     dune exec bench/main.exe -- model --model-json BENCH_model_check.json

   The [segment] section A/B-runs the identical ingest/churn/GDPR
   workload against the update-in-place allocator and the log-structured
   segment store (group commit + compaction + trim) on one build;
   [--segment-json PATH] writes the artifact; the committed
   BENCH_segment_io.json is produced by

     dune exec bench/main.exe -- segment --segment-json BENCH_segment_io.json

   The [sla] section replays one saturating open-loop schedule — heavy
   DED scans plus Poisson GDPR rights arrivals — against the FIFO and
   EDF dispatchers (shard-wave preemption), and runs the
   consent-revocation-storm and Art. 33 breach scenarios;
   [--sla-json PATH] writes the artifact; the committed
   BENCH_rights_sla.json is produced by

     dune exec bench/main.exe -- sla --sla-json BENCH_rights_sla.json

   The [async] section A/B-runs the E1 pipeline on one build with the
   device's submission/completion queues off (the scalar charging every
   committed baseline used) and on, sweeping queue depth 1/4/16/64;
   [--async-json PATH] writes the artifact; the committed
   BENCH_async_io.json is produced by

     dune exec bench/main.exe -- async --async-json BENCH_async_io.json

   [--compare OLD.json] reruns E1 and gates every stage's per-subject
   simulated time against OLD.json (CI runs this against the committed
   BENCH_hotpath.json).  When BENCH_vectored_io.json /
   BENCH_parallel_scale.json / BENCH_index_select.json /
   BENCH_mount_scale.json / BENCH_segment_io.json /
   BENCH_rights_sla.json / BENCH_async_io.json sit next to OLD.json,
   the merge ratio, the 4-domain speedup, the 1%-selectivity pushdown
   speedup, the clean-mount read ratio, the segmented sustained ingest,
   the Art. 15 p99 improvement and the async load-stage speedup are
   gated the same way (>25% regression fails; the SLA and async gates
   additionally keep their absolute bars).  When
   BENCH_fault_campaign.json sits there too, a fresh (smoke-sized)
   campaign must hold every invariant at every crash point — the
   robustness gate is absolute (pass rate == 100%), not a regression
   margin.  BENCH_model_check.json is gated the same absolute way
   (conformance == 100%) and, unlike the other siblings, is REQUIRED:
   a missing model artifact is itself a failing gate.  A missing or
   unparseable OLD.json, and a committed sibling that exists but fails
   to parse, are themselves failing gates (any other absent sibling is
   simply not gated).  Every failing gate is
   evaluated and printed before the single non-zero exit, so one run
   reports the full damage.
*)

open Bechamel
open Toolkit

module E = Rgpdos_workload.Experiments
module Penalties = Rgpdos_penalties.Penalties
module Prng = Rgpdos_util.Prng
module Clock = Rgpdos_util.Clock
module Hex = Rgpdos_util.Hex
module Bignum = Rgpdos_crypto.Bignum
module Sha256 = Rgpdos_crypto.Sha256
module Chacha20 = Rgpdos_crypto.Chacha20
module Rsa = Rgpdos_crypto.Rsa
module Envelope = Rgpdos_crypto.Envelope
module Membrane = Rgpdos_membrane.Membrane
module Value = Rgpdos_dbfs.Value
module Record = Rgpdos_dbfs.Record
module Audit_log = Rgpdos_audit.Audit_log

let section title body =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n";
  print_endline body

(* ------------------------------------------------------------------ *)
(* micro-benchmarks                                                   *)

let micro_tests () =
  let prng = Prng.create ~seed:1L () in
  let kib = Prng.bytes prng 1024 in
  let key32 = Prng.bytes prng 32 in
  let nonce12 = Prng.bytes prng 12 in
  let keypair = Rsa.generate ~bits:256 (Prng.create ~seed:2L ()) in
  let envelope = Envelope.seal prng keypair.Rsa.public kib in
  let base = Bignum.of_string "1234567890123456789012345678901234567890" in
  let exponent = Bignum.of_string "65537" in
  let modulus =
    Bignum.of_string "99999999999999999999999999999999999999999999999999999977"
  in
  let membrane =
    Membrane.make ~pd_id:"pd-1" ~type_name:"user" ~subject_id:"sub-1"
      ~origin:Membrane.Subject
      ~consents:
        [ ("service", Membrane.All); ("analytics", Membrane.View "v_ano");
          ("marketing", Membrane.Denied) ]
      ~created_at:0 ~ttl:Clock.year ~sensitivity:Membrane.High ()
  in
  let membrane_bytes = Membrane.encode membrane in
  let record : Record.t =
    [
      ("name", Value.VString "Chiraz Benamor");
      ("email", Value.VString "chiraz@example.test");
      ("year_of_birth", Value.VInt 1992);
    ]
  in
  let record_bytes = Record.encode record in
  let log = Audit_log.create () in
  for i = 0 to 999 do
    ignore
      (Audit_log.append log ~now:i ~actor:"ded"
         (Audit_log.Processed
            { purpose = "p"; inputs = [ "pd-1" ]; produced = [] }))
  done;
  Test.make_grouped ~name:"core"
    [
      Test.make ~name:"sha256/1KiB" (Staged.stage (fun () -> Sha256.digest kib));
      Test.make ~name:"hmac-sha256/1KiB"
        (Staged.stage (fun () -> Sha256.hmac ~key:key32 kib));
      Test.make ~name:"chacha20/1KiB"
        (Staged.stage (fun () -> Chacha20.encrypt ~key:key32 ~nonce:nonce12 kib));
      Test.make ~name:"bignum/modpow-190bit"
        (Staged.stage (fun () -> Bignum.mod_pow base exponent modulus));
      Test.make ~name:"envelope/seal-1KiB"
        (Staged.stage (fun () -> Envelope.seal prng keypair.Rsa.public kib));
      Test.make ~name:"envelope/open-1KiB"
        (Staged.stage (fun () -> Envelope.open_ keypair.Rsa.private_ envelope));
      Test.make ~name:"membrane/encode"
        (Staged.stage (fun () -> Membrane.encode membrane));
      Test.make ~name:"membrane/decode"
        (Staged.stage (fun () -> Membrane.decode membrane_bytes));
      Test.make ~name:"membrane/decide"
        (Staged.stage (fun () ->
             Membrane.decide membrane ~purpose:"analytics" ~now:1000));
      Test.make ~name:"record/encode" (Staged.stage (fun () -> Record.encode record));
      Test.make ~name:"record/decode"
        (Staged.stage (fun () -> Record.decode record_bytes));
      Test.make ~name:"audit/append"
        (Staged.stage (fun () ->
             Audit_log.append log ~now:0 ~actor:"ded"
               (Audit_log.Erased { pd_id = "pd-1"; mode = "crypto" })));
    ]

let run_micro () =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (micro_tests ()) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols_result acc ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | _ -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
      in
      { Rgpdos_workload.Bench_report.name; ns_per_op = estimate; r2 } :: acc)
    results []
  |> List.sort compare

let render_micro rows =
  Rgpdos_util.Table.render
    ~align:[ Rgpdos_util.Table.Left; Rgpdos_util.Table.Right; Rgpdos_util.Table.Right ]
    ~header:[ "benchmark"; "wall ns/op"; "r^2" ]
    (List.map
       (fun { Rgpdos_workload.Bench_report.name; ns_per_op; r2 } ->
         [ name; Printf.sprintf "%.1f" ns_per_op; Printf.sprintf "%.4f" r2 ])
       rows)

(* A3: crypto-erasure cost versus the authority's key size.  Wall-clock
   (host) timing of keygen / seal / open at growing RSA moduli — the knob
   an operator turns when the simulation-scale default (256 bits) is not
   enough. *)
let run_keysize_ablation () =
  let prng = Prng.create ~seed:4L () in
  let payload = Prng.bytes prng 1024 in
  let time_one f =
    let t0 = Sys.time () in
    let r = f () in
    (r, (Sys.time () -. t0) *. 1e3)
  in
  (* Sys.time has ~10ms resolution: average the cheap operations *)
  let time_avg n f =
    let t0 = Sys.time () in
    let last = ref (f ()) in
    for _ = 2 to n do
      last := f ()
    done;
    (!last, (Sys.time () -. t0) *. 1e3 /. float_of_int n)
  in
  let rows =
    List.map
      (fun bits ->
        let kp, keygen_ms = time_one (fun () -> Rsa.generate ~bits prng) in
        let env, seal_ms =
          time_avg 20 (fun () -> Envelope.seal prng kp.Rsa.public payload)
        in
        let opened, open_ms =
          time_avg 5 (fun () -> Envelope.open_ kp.Rsa.private_ env)
        in
        (match opened with
        | Ok p when String.equal p payload -> ()
        | _ -> failwith "a3: envelope did not roundtrip");
        [
          string_of_int bits;
          Printf.sprintf "%.1f" keygen_ms;
          Printf.sprintf "%.2f" seal_ms;
          Printf.sprintf "%.2f" open_ms;
        ])
      [ 256; 384; 512; 1_024 ] (* < ~224 bits cannot hold the envelope seed *)
  in
  Rgpdos_util.Table.render
    ~align:Rgpdos_util.Table.[ Right; Right; Right; Right ]
    ~header:[ "modulus bits"; "keygen ms"; "seal 1KiB ms"; "open 1KiB ms" ]
    rows

(* ------------------------------------------------------------------ *)
(* driver                                                             *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let rec extract_json acc = function
    | [] -> (None, List.rev acc)
    | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
    | [ "--json" ] -> failwith "--json requires a PATH argument"
    | a :: rest -> extract_json (a :: acc) rest
  in
  let json_path, args = extract_json [] args in
  let rec extract_flag name acc = function
    | [] -> (None, List.rev acc)
    | flag :: path :: rest when flag = name -> (Some path, List.rev_append acc rest)
    | [ flag ] when flag = name -> failwith (name ^ " requires a PATH argument")
    | a :: rest -> extract_flag name (a :: acc) rest
  in
  let vec_json_path, args = extract_flag "--vec-json" [] args in
  let scale_json_path, args = extract_flag "--scale-json" [] args in
  let index_json_path, args = extract_flag "--index-json" [] args in
  let mount_json_path, args = extract_flag "--mount-json" [] args in
  let fault_json_path, args = extract_flag "--fault-json" [] args in
  let segment_json_path, args = extract_flag "--segment-json" [] args in
  let sla_json_path, args = extract_flag "--sla-json" [] args in
  let async_json_path, args = extract_flag "--async-json" [] args in
  let model_json_path, args = extract_flag "--model-json" [] args in
  let compare_path, args = extract_flag "--compare" [] args in
  let wanted = List.filter (fun a -> a <> "--quick") args in
  let enabled name = wanted = [] || List.mem name wanted in
  if json_path <> None && not (enabled "micro") then
    failwith
      "--json needs the micro section for a valid report; run e.g. \
       bench/main.exe -- --quick micro e1 e4 --json PATH";
  if vec_json_path <> None && not (enabled "vecio") then
    failwith
      "--vec-json needs the vecio section; run e.g. \
       bench/main.exe -- vecio --vec-json BENCH_vectored_io.json";
  if scale_json_path <> None && not (enabled "scale") then
    failwith
      "--scale-json needs the scale section; run e.g. \
       bench/main.exe -- scale --scale-json BENCH_parallel_scale.json";
  if index_json_path <> None && not (enabled "index") then
    failwith
      "--index-json needs the index section; run e.g. \
       bench/main.exe -- index --index-json BENCH_index_select.json";
  if mount_json_path <> None && not (enabled "mount") then
    failwith
      "--mount-json needs the mount section; run e.g. \
       bench/main.exe -- mount --mount-json BENCH_mount_scale.json";
  if fault_json_path <> None && not (enabled "fault") then
    failwith
      "--fault-json needs the fault section; run e.g. \
       bench/main.exe -- fault --fault-json BENCH_fault_campaign.json";
  if segment_json_path <> None && not (enabled "segment") then
    failwith
      "--segment-json needs the segment section; run e.g. \
       bench/main.exe -- segment --segment-json BENCH_segment_io.json";
  if sla_json_path <> None && not (enabled "sla") then
    failwith
      "--sla-json needs the sla section; run e.g. \
       bench/main.exe -- sla --sla-json BENCH_rights_sla.json";
  if async_json_path <> None && not (enabled "async") then
    failwith
      "--async-json needs the async section; run e.g. \
       bench/main.exe -- async --async-json BENCH_async_io.json";
  if model_json_path <> None && not (enabled "model") then
    failwith
      "--model-json needs the model section; run e.g. \
       bench/main.exe -- model --model-json BENCH_model_check.json";
  let d full small = if quick then small else full in

  (* host wall-clock per section, for the JSON report *)
  let timed f =
    let t0 = Sys.time () in
    let r = f () in
    (r, (Sys.time () -. t0) *. 1e3)
  in
  let micro_rows = ref [] in
  let e1_result = ref None in
  let e4_result = ref None in
  let scale_speedup4 = ref None in
  let index_speedup1pct = ref None in
  let mount_read_ratio = ref None in
  let fault_pass_rate = ref None in
  let segment_ingest = ref None in
  let sla_improvement15 = ref None in
  let async_metrics = ref None in
  let model_conformance = ref None in
  (* the 1%-selectivity pushdown speedup at the smallest population >=
     2000 — the configuration the index artifact gates on (present at
     both quick and full scale) *)
  let speedup_1pct_of rows =
    List.fold_left
      (fun best (row : E.eidx_select_row) ->
        if row.E.eidx_selectivity_pct = 1.0 && row.E.eidx_population >= 2_000
        then
          match best with
          | Some (bp, _) when bp <= row.E.eidx_population -> best
          | _ -> Some (row.E.eidx_population, row.E.eidx_speedup)
        else best)
      None rows
    |> Option.map snd
  in

  if enabled "fig1" then
    section "FIG1 — GDPR penalty statistics (paper Figure 1)"
      (Penalties.render_figure1 ());

  if enabled "e1" then begin
    let r, wall_ms = timed (fun () -> E.e1_ded_stages ~subjects:(d 2_000 200) ()) in
    e1_result := Some (r, wall_ms);
    section "E1 — DED pipeline breakdown" (E.render_e1 r)
  end;

  if enabled "e2" then
    section "E2 — GDPRBench roles: rgpdOS vs DB-level GDPR vs vanilla"
      (E.render_e2
         (E.e2_gdprbench ~subjects:(d 400 80) ~ops_per_role:(d 200 50) ()));

  if enabled "e2b" then
    section "E2b — processor-role scaling sweep"
      (E.render_e2b
         (E.e2b_scaling
            ~sizes:(d [ 100; 200; 400; 800 ] [ 50; 100 ])
            ~ops:(d 100 30) ()));

  if enabled "e3" then
    section "E3 — right to be forgotten (forensic)"
      (E.render_e3 (E.e3_erasure ~subjects:(d 300 60) ~erase_fraction:0.10 ()));

  if enabled "e4" then begin
    let r, wall_ms =
      timed (fun () ->
          E.e4_access
            ~records_per_subject:(d [ 1; 10; 50; 200; 1_000 ] [ 1; 10; 50 ])
            ())
    in
    e4_result := Some (r, wall_ms);
    section "E4 — right of access latency" (E.render_e4 r)
  end;

  if enabled "e5" then
    section "E5 — storage-limitation sweep"
      (E.render_e5
         (E.e5_ttl ~sizes:(d [ 500; 1_000; 2_000; 4_000 ] [ 100; 200 ]) ()));

  if enabled "e6" then
    section "E6 — membrane filter selectivity"
      (E.render_e6 (E.e6_filter ~subjects:(d 1_000 150) ()));

  if enabled "e7" then
    section "E7 — cross-purpose leak attempts"
      (E.render_e7 (E.e7_leak ~attacks:(d 200 40) ()));

  if enabled "e8" then
    section "E8 — ps_register purpose/implementation checks"
      (E.render_e8 (E.e8_register ()));

  if enabled "e9" then
    section "E9 — purpose-kernel partitioning"
      (E.render_e9 (E.e9_kernels ~jobs:(d 100 24) ()));

  if enabled "e11" then
    section "E11 — consent churn with live copies"
      (E.render_e11
         (E.e11_consent_churn ~subjects:(d 300 60) ~flips:(d 200 40) ()));

  if enabled "a1" then
    section "A1 — ablation: two-phase vs single-phase DBFS fetching"
      (E.render_a1 (E.a1_fetch_mode ~subjects:(d 500 80) ()));

  if enabled "a2" then
    section "A2 — ablation: DED placement (host / PIM / PIS)"
      (E.render_a2 (E.a2_placement ~subjects:(d 1_000 150) ()));

  if enabled "e10" then
    section "E10 — audit-chain verification"
      (E.render_e10
         (E.e10_audit ~sizes:(d [ 100; 1_000; 10_000; 50_000 ] [ 100; 1_000 ]) ()));

  if enabled "a3" then
    section "A3 — ablation: crypto-erasure cost vs authority key size (wall clock)"
      (run_keysize_ablation ());

  if enabled "micro" then begin
    let rows = run_micro () in
    micro_rows := rows;
    section "MICRO — bechamel micro-benchmarks (host wall clock)"
      (render_micro rows)
  end;

  if enabled "vecio" then begin
    let module BR = Rgpdos_workload.Bench_report in
    let subjects = d 2_000 200 in
    let scalar, scalar_wall_ms =
      timed (fun () -> E.e1_ded_stages ~subjects ~vectored:false ())
    in
    let vectored, vectored_wall_ms =
      timed (fun () -> E.e1_ded_stages ~subjects ~vectored:true ())
    in
    let baseline =
      (* committed hotpath artifact, when running from the project root *)
      Option.bind
        (List.find_opt Sys.file_exists
           [ "BENCH_hotpath.json"; "../BENCH_hotpath.json" ])
        BR.read_file
    in
    let report =
      BR.make_vectored ~scalar ~scalar_wall_ms ~vectored ~vectored_wall_ms
        ?baseline ()
    in
    (match BR.validate_vectored report with
    | Ok () -> ()
    | Error e ->
        failwith ("vectored-io report failed self-validation: " ^ e));
    let body =
      Printf.sprintf
        "scalar (one seek per block):\n%s\nvectored (one seek per merged \
         run):\n%s\nmerge ratio: %.1f blocks per seek"
        (E.render_e1 scalar) (E.render_e1 vectored)
        (BR.merge_ratio vectored.E.e1_device)
    in
    section "VECIO — scalar vs vectored device cost model (E1)" body;
    match vec_json_path with
    | None -> ()
    | Some path ->
        BR.write_file path report;
        Printf.printf "\nwrote %s\n" path
  end;

  if enabled "scale" then begin
    let module SB = Rgpdos_workload.Shard_bench in
    let module BR = Rgpdos_workload.Bench_report in
    let module Table = Rgpdos_util.Table in
    let subjects = d 800 240 and total_ops = d 400 120 in
    let domain_counts = [ 1; 2; 4; 8 ] in
    let runs =
      Rgpdos_util.Pool.with_pool (fun pool ->
          List.map
            (fun shards ->
              SB.run ~pool ~role:Rgpdos_workload.Gdprbench.Processor ~subjects
                ~total_ops ~shards ())
            domain_counts)
    in
    let baseline = List.hd runs in
    let rows = List.map (BR.scale_row_of_report ~baseline) runs in
    let e1_subjects = d 2_000 200 in
    let e1_cores = Rgpdos_ded.Ded.location_cores Rgpdos_ded.Ded.Host in
    let e1_seq = E.e1_ded_stages ~subjects:e1_subjects ~cores:1 () in
    let e1_par = E.e1_ded_stages ~subjects:e1_subjects () in
    let report =
      BR.make_scale ~role:"processor" ~subjects ~total_ops ~rows ~e1_seq
        ~e1_par ~e1_cores ()
    in
    (match BR.validate_scale report with
    | Ok () -> ()
    | Error e -> failwith ("parallel-scale report failed self-validation: " ^ e));
    scale_speedup4 := BR.scale_speedup_at report 4;
    let exec r = List.assoc "ded_execute" r.E.e1_stage_ns in
    let body =
      Table.render
        ~align:Table.[ Right; Right; Right; Right; Right; Right ]
        ~header:
          [
            "domains"; "sim critical ms"; "aggregate ms"; "kops/sim-s";
            "speedup"; "host wall s";
          ]
        (List.map
           (fun (row : BR.scale_row) ->
             [
               string_of_int row.BR.domains;
               Printf.sprintf "%.2f" (float_of_int row.BR.sim_critical_ns /. 1e6);
               Printf.sprintf "%.2f" (float_of_int row.BR.sim_total_ns /. 1e6);
               Printf.sprintf "%.1f" row.BR.kops_per_sim_s;
               Printf.sprintf "%.2fx" row.BR.speedup;
               Printf.sprintf "%.3f" row.BR.wall_s;
             ])
           rows)
      ^ Printf.sprintf
          "\nE1 ded_execute (%d subjects): sequential %.2f sim-ms -> %d-core \
           %.2f sim-ms (%.1f%% less)"
          e1_subjects
          (float_of_int (exec e1_seq) /. 1e6)
          e1_cores
          (float_of_int (exec e1_par) /. 1e6)
          (100.0
          *. float_of_int (exec e1_seq - exec e1_par)
          /. float_of_int (max 1 (exec e1_seq)))
    in
    section
      "SCALE — sharded GDPRBench domains sweep (processor-role mix)" body;
    match scale_json_path with
    | None -> ()
    | Some path ->
        BR.write_file path report;
        Printf.printf "\nwrote %s\n" path
  end;

  if enabled "index" then begin
    let module BR = Rgpdos_workload.Bench_report in
    let result, wall_ms =
      timed (fun () ->
          E.e_index
            ~sizes:(d [ 500; 2_000; 8_000 ] [ 500; 2_000 ])
            ~ttl_sizes:(d [ 500; 2_000; 4_000 ] [ 200; 500 ])
            ())
    in
    index_speedup1pct := speedup_1pct_of result.E.eidx_select;
    let report = BR.make_index ~result ~wall_ms in
    (match BR.validate_index report with
    | Ok () -> ()
    | Error e -> failwith ("index-select report failed self-validation: " ^ e));
    section "INDEX — secondary-index pushdown vs full-type scans"
      (E.render_e_index result);
    match index_json_path with
    | None -> ()
    | Some path ->
        BR.write_file path report;
        Printf.printf "\nwrote %s\n" path
  end;

  if enabled "mount" then begin
    let module MB = Rgpdos_workload.Mount_bench in
    let module BR = Rgpdos_workload.Bench_report in
    let result, wall_ms =
      timed (fun () ->
          MB.run
            ~sizes:(d [ 1_000; 10_000; 100_000; 1_000_000 ] [ 1_000; 4_000; 10_000 ])
            ~ops:(d 20_000 1_000) ~budget:(d 4_096 512) ())
    in
    mount_read_ratio := Some (MB.read_ratio result);
    let report = BR.make_mount ~result ~wall_ms in
    (match BR.validate_mount report with
    | Ok () -> ()
    | Error e -> failwith ("mount-scale report failed self-validation: " ^ e));
    section "MOUNT — paged-index mount scaling + bounded-cache Zipf workload"
      (MB.render result);
    match mount_json_path with
    | None -> ()
    | Some path ->
        BR.write_file path report;
        Printf.printf "\nwrote %s\n" path
  end;

  if enabled "fault" then begin
    let module FC = Rgpdos_workload.Fault_campaign in
    let module BR = Rgpdos_workload.Bench_report in
    (* the campaign is deterministic and the workload writes well under
       the 200-point smoke cap, so quick and full runs enumerate the
       same exhaustive crash-point space unless the workload grows *)
    let result, wall_ms =
      timed (fun () ->
          if quick then FC.run ~max_points:200 () else FC.run ())
    in
    fault_pass_rate := Some (FC.pass_rate_pct result);
    let report = BR.make_fault ~result ~wall_ms () in
    (match BR.validate_fault report with
    | Ok () -> ()
    | Error e -> failwith ("fault-campaign report failed self-validation: " ^ e));
    section "FAULT — deterministic crash/fault-injection campaign"
      (FC.render result);
    match fault_json_path with
    | None -> ()
    | Some path ->
        BR.write_file path report;
        Printf.printf "\nwrote %s\n" path
  end;

  if enabled "model" then begin
    let module RF = Rgpdos_model.Refine in
    let module BR = Rgpdos_workload.Bench_report in
    (* deterministic in the seed; the QCHECK_COUNT smoke budget (when
       set) governs the script count, otherwise --quick trims it *)
    let scripts =
      match Sys.getenv_opt "QCHECK_COUNT" with
      | Some _ -> None
      | None -> if quick then Some 2 else None
    in
    let result, wall_ms = timed (fun () -> RF.run ?scripts ()) in
    model_conformance := Some (RF.conformance_pct result);
    let report = BR.make_model ~result ~wall_ms () in
    (match BR.validate_model report with
    | Ok () -> ()
    | Error e -> failwith ("model-check report failed self-validation: " ^ e));
    section
      "MODEL — executable GDPR model refinement (lockstep / crash / \
       linearizability / coherence)"
      (RF.render result);
    match model_json_path with
    | None -> ()
    | Some path ->
        BR.write_file path report;
        Printf.printf "\nwrote %s\n" path
  end;

  if enabled "segment" then begin
    let module SG = Rgpdos_workload.Segment_bench in
    let module BR = Rgpdos_workload.Bench_report in
    (* both sides run on the virtual clock, so quick and full measure the
       same deterministic numbers; the >= 10^4-subject claim in the
       artifact requires the default size either way *)
    let result, wall_ms = timed (fun () -> SG.run ()) in
    segment_ingest := Some result.SG.sr_segmented.SG.sg_ingest_mb_s;
    let report = BR.make_segment ~result ~wall_ms in
    (match BR.validate_segment report with
    | Ok () -> ()
    | Error e -> failwith ("segment-io report failed self-validation: " ^ e));
    section "SEGMENT — update-in-place vs log-structured segments (A/B)"
      (SG.render result);
    match segment_json_path with
    | None -> ()
    | Some path ->
        BR.write_file path report;
        Printf.printf "\nwrote %s\n" path
  end;

  if enabled "sla" then begin
    let module SLA = Rgpdos_workload.Sla_bench in
    let module BR = Rgpdos_workload.Bench_report in
    let result, wall_ms =
      timed (fun () ->
          SLA.run ~subjects:(d 2_000 600) ~batches:(d 30 12) ())
    in
    sla_improvement15 := SLA.improvement result "art15";
    let report = BR.make_sla ~result ~wall_ms in
    (match BR.validate_sla report with
    | Ok () -> ()
    | Error e -> failwith ("rights-sla report failed self-validation: " ^ e));
    section "SLA — rights latency under saturating load (FIFO vs EDF)"
      (SLA.render result);
    match sla_json_path with
    | None -> ()
    | Some path ->
        BR.write_file path report;
        Printf.printf "\nwrote %s\n" path
  end;

  if enabled "async" then begin
    let module AB = Rgpdos_workload.Async_bench in
    let module BR = Rgpdos_workload.Bench_report in
    (* virtual-clock A/B: quick shrinks the populations but keeps the
       full depth sweep, so the gated depth >= 4 rows exist either way *)
    let result, wall_ms =
      timed (fun () ->
          AB.run ~sizes:(d [ 2_000; 8_000 ] [ 400; 1_000 ]) ())
    in
    async_metrics :=
      Some (result.AB.a_best_load_speedup, result.AB.a_best_overlap_pct);
    let report = BR.make_async ~result ~wall_ms in
    (match BR.validate_async report with
    | Ok () -> ()
    | Error e -> failwith ("async-io report failed self-validation: " ^ e));
    section "ASYNC — submission/completion queues A/B (E1, async off vs on)"
      (AB.render result);
    match async_json_path with
    | None -> ()
    | Some path ->
        BR.write_file path report;
        Printf.printf "\nwrote %s\n" path
  end;

  (match compare_path with
  | None -> ()
  | Some path ->
      let module BR = Rgpdos_workload.Bench_report in
      (* every gate runs and every failure is recorded; CI gets the full
         list of regressions from one run instead of one per rerun *)
      let failures = ref [] in
      let gate lines = failures := !failures @ lines in
      (* a baseline that is missing or does not parse is itself a failing
         gate, reported in the collected list like any regression — the
         remaining sibling gates still run so one pass shows everything *)
      let old_report =
        if not (Sys.file_exists path) then begin
          gate [ "--compare: missing committed artifact " ^ path ];
          None
        end
        else
          match BR.read_file path with
          | Some r -> Some r
          | None ->
              gate [ "--compare: cannot parse " ^ path ];
              None
      in
      let current =
        match !e1_result with
        | Some (r, _) -> r
        | None -> E.e1_ded_stages ~subjects:(d 2_000 200) ()
      in
      (match old_report with
      | None -> ()
      | Some old_report -> (
          match BR.compare_e1 ~old_report current with
          | Ok n ->
              Printf.printf
                "\ncompare: %d E1 stages checked against %s — no regression > \
                 %.0f%%\n"
                n path BR.regression_threshold_pct
          | Error lines -> gate (List.map (fun l -> "E1: " ^ l) lines)));
      (* the artifacts committed next to OLD.json gate their own
         headline numbers the same way.  An absent sibling is simply not
         gated; one that exists but does not parse is a failing gate. *)
      let sibling name = Filename.concat (Filename.dirname path) name in
      let with_sibling name f =
        let p = sibling name in
        if Sys.file_exists p then
          match BR.read_file p with
          | Some old -> f old
          | None -> gate [ "--compare: cannot parse " ^ p ]
      in
      with_sibling "BENCH_vectored_io.json" (fun old_vec ->
          let ratio = BR.merge_ratio current.E.e1_device in
          match
            BR.compare_vectored ~old_report:old_vec
              ~subjects:current.E.e1_subjects ~merge_ratio:ratio
          with
          | Ok committed ->
              Printf.printf
                "compare: E1 merge ratio %.2f vs committed %.2f — ok\n" ratio
                committed
          | Error line -> gate [ line ]);
      with_sibling "BENCH_parallel_scale.json" (fun old_scale ->
          let speedup4 =
            match !scale_speedup4 with
            | Some s -> s
            | None ->
                (* scale section did not run: measure a small sweep *)
                let module SB = Rgpdos_workload.Shard_bench in
                let subjects = d 400 160 and total_ops = d 200 80 in
                let one =
                  SB.run ~role:Rgpdos_workload.Gdprbench.Processor ~subjects
                    ~total_ops ~shards:1 ()
                in
                let four =
                  SB.run ~role:Rgpdos_workload.Gdprbench.Processor ~subjects
                    ~total_ops ~shards:4 ()
                in
                SB.speedup ~baseline:one four
          in
          match BR.compare_scale ~old_report:old_scale ~speedup4 with
          | Ok committed ->
              Printf.printf
                "compare: 4-domain speedup %.2fx vs committed %.2fx — ok\n"
                speedup4 committed
          | Error line -> gate [ line ]);
      with_sibling "BENCH_index_select.json" (fun old_index ->
          let speedup1pct =
            match !index_speedup1pct with
            | Some s -> s
            | None -> (
                (* index section did not run: measure the gated
                   configuration alone *)
                match speedup_1pct_of (E.e_index_select ~sizes:[ 2_000 ] ()) with
                | Some s -> s
                | None -> failwith "--compare: e_index_select has no 1% row")
          in
          match BR.compare_index ~old_report:old_index ~speedup1pct with
          | Ok committed ->
              Printf.printf
                "compare: 1%%-selectivity pushdown %.1fx vs committed %.1fx \
                 — ok\n"
                speedup1pct committed
          | Error line -> gate [ line ]);
      with_sibling "BENCH_mount_scale.json" (fun old_mount ->
          let module MB = Rgpdos_workload.Mount_bench in
          let read_ratio_max =
            match !mount_read_ratio with
            | Some r -> r
            | None ->
                (* mount section did not run: measure a small sweep *)
                MB.read_ratio
                  (MB.run ~sizes:[ 1_000; 4_000 ] ~ops:200 ~budget:256 ())
          in
          match BR.compare_mount ~old_report:old_mount ~read_ratio_max with
          | Ok committed ->
              Printf.printf
                "compare: clean-mount read ratio %.2fx vs committed %.2fx — \
                 ok\n"
                read_ratio_max committed
          | Error line -> gate [ line ]);
      with_sibling "BENCH_fault_campaign.json" (fun old_fault ->
          let module FC = Rgpdos_workload.Fault_campaign in
          let pass_rate_pct =
            match !fault_pass_rate with
            | Some r -> r
            | None ->
                (* fault section did not run: rerun the campaign at the
                   smoke cap — it is deterministic, so this is the same
                   verdict set CI committed *)
                FC.pass_rate_pct (FC.run ~max_points:200 ())
          in
          match BR.compare_fault ~old_report:old_fault ~pass_rate_pct with
          | Ok committed ->
              Printf.printf
                "compare: fault-campaign invariant pass rate %.1f%% vs \
                 committed %.1f%% — ok\n"
                pass_rate_pct committed
          | Error line -> gate [ line ]);
      (* the model-refinement artifact is REQUIRED, unlike the other
         siblings: semantics conformance must never silently drop out of
         the gate set, so a missing BENCH_model_check.json is itself a
         failing gate *)
      (let p = sibling "BENCH_model_check.json" in
       if not (Sys.file_exists p) then
         gate [ "--compare: missing committed artifact " ^ p ]
       else
         with_sibling "BENCH_model_check.json" (fun old_model ->
             let conformance =
               match !model_conformance with
               | Some c -> c
               | None ->
                   (* model section did not run: rerun a small campaign —
                      deterministic in the seed *)
                   let module RF = Rgpdos_model.Refine in
                   RF.conformance_pct (RF.run ~scripts:2 ())
             in
             match
               BR.compare_model ~old_report:old_model
                 ~conformance_pct:conformance
             with
             | Ok committed ->
                 Printf.printf
                   "compare: model refinement conformance %.2f%% vs \
                    committed %.2f%% — ok (absolute bar %.0f%%)\n"
                   conformance committed BR.model_conformance_bar
             | Error line -> gate [ "model: " ^ line ]));
      with_sibling "BENCH_segment_io.json" (fun old_segment ->
          let module SG = Rgpdos_workload.Segment_bench in
          let ingest_mb_s =
            match !segment_ingest with
            | Some s -> s
            | None ->
                (* segment section did not run: the A/B bench is
                   virtual-clock deterministic, so rerunning the default
                   configuration reproduces the committed measurement *)
                (SG.run ()).SG.sr_segmented.SG.sg_ingest_mb_s
          in
          match BR.compare_segment ~old_report:old_segment ~ingest_mb_s with
          | Ok committed ->
              Printf.printf
                "compare: segmented sustained ingest %.2f MB/s vs committed \
                 %.2f — ok\n"
                ingest_mb_s committed
          | Error line -> gate [ line ]);
      with_sibling "BENCH_rights_sla.json" (fun old_sla ->
          let module SLA = Rgpdos_workload.Sla_bench in
          let improvement15 =
            match !sla_improvement15 with
            | Some s -> s
            | None -> (
                (* sla section did not run: replay a small A/B — the
                   driver is virtual-clock deterministic, so the quick
                   measurement is reproducible *)
                let r = SLA.run ~subjects:600 ~batches:12 () in
                match SLA.improvement r "art15" with
                | Some s -> s
                | None -> failwith "--compare: sla run has no art15 samples")
          in
          match BR.compare_sla ~old_report:old_sla ~improvement15 with
          | Ok committed ->
              Printf.printf
                "compare: Art. 15 p99 improvement %.1fx vs committed %.1fx — \
                 ok (absolute bar %.1fx)\n"
                improvement15 committed BR.sla_improvement_bar
          | Error line -> gate [ line ]);
      with_sibling "BENCH_async_io.json" (fun old_async ->
          let module AB = Rgpdos_workload.Async_bench in
          let speedup, overlap =
            match !async_metrics with
            | Some m -> m
            | None ->
                (* async section did not run: replay a small A/B — the
                   driver is virtual-clock deterministic, so the quick
                   measurement is reproducible *)
                let r = AB.run ~sizes:[ 400; 1_000 ] () in
                (r.AB.a_best_load_speedup, r.AB.a_best_overlap_pct)
          in
          match BR.compare_async ~old_report:old_async ~speedup ~overlap with
          | Ok committed ->
              Printf.printf
                "compare: async load speedup %.2fx (overlap %.1f%%) vs \
                 committed %.2fx — ok (absolute bars %.1fx / %.0f%%)\n"
                speedup overlap committed BR.async_speedup_bar
                BR.async_overlap_bar
          | Error line -> gate [ line ]);
      match !failures with
      | [] -> ()
      | lines ->
          Printf.eprintf "\ncompare: %d gate(s) failed vs %s:\n"
            (List.length lines) path;
          List.iter (fun l -> Printf.eprintf "  %s\n" l) lines;
          exit 1);

  (match json_path with
  | None -> ()
  | Some path ->
      let module BR = Rgpdos_workload.Bench_report in
      let report =
        BR.make ~quick ~micro:!micro_rows ?e1:!e1_result ?e4:!e4_result ()
      in
      (match BR.validate report with
      | Ok () -> ()
      | Error e -> failwith ("bench report failed self-validation: " ^ e));
      BR.write_file path report;
      Printf.printf "\nwrote %s\n" path);

  print_newline ();
  print_endline "done."
